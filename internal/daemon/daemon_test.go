package daemon_test

// The tenant-isolation contract, tested at the byte level: every stream a
// daemon hosts must produce exactly the artifacts a solo `depmine -follow`
// run over the same source and geometry produces — same model documents,
// same delta/DRIFT events, same checkpoint, same store segments — at any
// worker count, beside any set of neighbor tenants, and across a hard
// kill + restart.

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logscape/internal/daemon"
	"logscape/internal/directory"
	"logscape/internal/follow"
	"logscape/internal/logmodel"
)

// ts renders a millisecond timestamp for 2005-12-06 08:00:00 UTC + off.
func ts(off time.Duration) logmodel.Millis {
	base := time.Date(2005, 12, 6, 8, 0, 0, 0, time.UTC)
	return logmodel.Millis(base.Add(off).UnixMilli())
}

// wline renders one wire-format line.
func wline(at logmodel.Millis, src, msg string) string {
	return logmodel.FormatEntry(logmodel.Entry{
		Time: at, Source: src, Host: "h", User: "u", Severity: logmodel.SevInfo, Message: msg,
	})
}

// writeLog writes lines to a fresh temp file and returns its path.
func writeLog(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.log")
	writeLines(t, path, lines)
	return path
}

func writeLines(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendLines(t *testing.T, path string, lines []string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(strings.Join(lines, "\n") + "\n"); err != nil {
		t.Fatal(err)
	}
}

// pairCorpus: sources A and B log in lockstep, then C replaces B — the
// sliding window's pair set changes twice.
func pairCorpus() []string {
	var lines []string
	emit := func(bucket int, srcs ...string) {
		for i := 0; i < 25; i++ {
			at := ts(time.Duration(bucket)*time.Second + time.Duration(i*37)*time.Millisecond)
			for _, s := range srcs {
				lines = append(lines, wline(at, s, fmt.Sprintf("tick %d", i)))
			}
		}
	}
	for b := 0; b < 3; b++ {
		emit(b, "AppA", "AppB")
	}
	for b := 3; b < 6; b++ {
		emit(b, "AppA", "AppC")
	}
	lines = append(lines, wline(ts(6*time.Second), "AppA", "done"))
	return lines
}

// depCorpus: App1 cites the REG group early, then switches to STORE (l3).
func depCorpus() []string {
	var lines []string
	for b := 0; b < 3; b++ {
		at := ts(time.Duration(b) * time.Second)
		lines = append(lines, wline(at, "App1", "GET http://reg.hug/reg/list"))
		lines = append(lines, wline(at+100, "App1", "reply ok"))
	}
	for b := 3; b < 6; b++ {
		at := ts(time.Duration(b) * time.Second)
		lines = append(lines, wline(at, "App1", "PUT http://store.hug/store/save"))
		lines = append(lines, wline(at+100, "App1", "reply ok"))
	}
	lines = append(lines, wline(ts(6*time.Second), "App1", "done"))
	return lines
}

// driftCorpus: a scripted incident — App1 adopts STORE at bucket 5 (a
// birth) and abandons REG at bucket 24 (a death), each confirmed by the
// detector a few buckets later.
func driftCorpus() []string {
	var lines []string
	for b := 0; b <= 32; b++ {
		at := ts(time.Duration(b) * time.Second)
		if b < 24 {
			lines = append(lines, wline(at, "App1", "GET http://reg.hug/reg/list"))
		}
		if b >= 5 {
			lines = append(lines, wline(at+200, "App1", "PUT http://store.hug/store/save"))
		}
	}
	lines = append(lines, wline(ts(33*time.Second), "App1", "done"))
	return lines
}

// writeDirXML persists the test service directory (REG and STORE groups).
func writeDirXML(t *testing.T) string {
	t.Helper()
	d := &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "REG", RootURL: "http://reg.hug/reg", Services: []directory.Service{{Name: "list"}}},
		{ID: "STORE", RootURL: "http://store.hug/store", Services: []directory.Service{{Name: "save"}}},
	}}
	path := filepath.Join(t.TempDir(), "dir.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// artifacts is everything a stream run writes: the byte-identity surface.
type artifacts struct {
	out, events, ckpt, quarantine []byte
	store                         map[string][]byte // rel path -> content
}

func readFileOrEmpty(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return b
}

// readTree reads every regular file under root, keyed by relative path.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// soloRef runs the reference: one engine, alone in a fresh directory, at
// Workers 1, over the stream's full source.
func soloRef(t *testing.T, cfg daemon.StreamConfig) artifacts {
	t.Helper()
	dir := t.TempDir()
	var out, events bytes.Buffer
	fcfg := follow.Config{
		Method:         cfg.Method,
		Source:         cfg.Source,
		DirPath:        cfg.Directory,
		MinLogs:        cfg.MinLogs,
		TimeoutSec:     cfg.TimeoutSec,
		NoStops:        cfg.NoStops,
		Workers:        1,
		BucketSec:      cfg.BucketSec,
		WindowBuckets:  cfg.WindowBuckets,
		ResumePath:     filepath.Join(dir, "follow.ckpt"),
		QuarantinePath: filepath.Join(dir, "quarantine.log"),
		StorePath:      filepath.Join(dir, "store"),
		Drift:          cfg.Drift,
	}
	if _, err := follow.Run(fcfg, &out, &events); err != nil {
		t.Fatal(err)
	}
	return artifacts{
		out:        out.Bytes(),
		events:     events.Bytes(),
		ckpt:       readFileOrEmpty(t, fcfg.ResumePath),
		quarantine: readFileOrEmpty(t, fcfg.QuarantinePath),
		store:      readTree(t, fcfg.StorePath),
	}
}

// tenantArtifacts reads a daemon tenant's artifacts from its state dir.
func tenantArtifacts(t *testing.T, stateDir, name string) artifacts {
	t.Helper()
	dir := filepath.Join(stateDir, name)
	return artifacts{
		out:        readFileOrEmpty(t, filepath.Join(dir, "out.log")),
		events:     readFileOrEmpty(t, filepath.Join(dir, "events.log")),
		ckpt:       readFileOrEmpty(t, filepath.Join(dir, "follow.ckpt")),
		quarantine: readFileOrEmpty(t, filepath.Join(dir, "quarantine.log")),
		store:      readTree(t, filepath.Join(dir, "store")),
	}
}

// mustEqual asserts got's every artifact is byte-identical to want's.
func mustEqual(t *testing.T, label string, got, want artifacts) {
	t.Helper()
	diff := func(kind string, g, w []byte) {
		if !bytes.Equal(g, w) {
			t.Errorf("%s: %s differs from the solo reference (%d vs %d bytes)", label, kind, len(g), len(w))
		}
	}
	diff("model documents (out.log)", got.out, want.out)
	diff("events.log", got.events, want.events)
	diff("checkpoint", got.ckpt, want.ckpt)
	diff("quarantine", got.quarantine, want.quarantine)
	for rel, w := range want.store {
		g, ok := got.store[rel]
		if !ok {
			t.Errorf("%s: store file %s missing", label, rel)
			continue
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s: store file %s differs (%d vs %d bytes)", label, rel, len(g), len(w))
		}
	}
	for rel := range got.store {
		if _, ok := want.store[rel]; !ok {
			t.Errorf("%s: store holds extra file %s", label, rel)
		}
	}
}

// scenario is one hospital stream shape the multi-tenant tests host.
type scenario struct {
	name   string
	cfg    daemon.StreamConfig // Source filled in by the test
	corpus []string
}

// scenarios returns the mixed-workload roster: three miners, distinct
// geometries, with and without drift detection.
func scenarios(dirXML string) []scenario {
	return []scenario{
		{"pairs", daemon.StreamConfig{Method: "l1", MinLogs: 2, BucketSec: 1, WindowBuckets: 2}, pairCorpus()},
		{"pairs-wide", daemon.StreamConfig{Method: "l1", MinLogs: 2, BucketSec: 2, WindowBuckets: 3}, pairCorpus()},
		{"sessions", daemon.StreamConfig{Method: "l2", TimeoutSec: 1, BucketSec: 1, WindowBuckets: 2}, pairCorpus()},
		{"deps", daemon.StreamConfig{Method: "l3", Directory: dirXML, BucketSec: 1, WindowBuckets: 2}, depCorpus()},
		{"drift", daemon.StreamConfig{Method: "l3", Directory: dirXML, Drift: true, BucketSec: 1, WindowBuckets: 2}, driftCorpus()},
	}
}

// TestTenantIsolationEquivalence runs every scenario twice — Workers 1
// and Workers 8 — as ten concurrent tenants of one daemon, and compares
// each tenant's complete artifact set byte-for-byte against a solo
// Workers-1 reference run. Neighbors, the shared pool, and the worker
// knob must all be invisible in the output.
func TestTenantIsolationEquivalence(t *testing.T) {
	dirXML := writeDirXML(t)
	scens := scenarios(dirXML)
	refs := make(map[string]artifacts, len(scens))
	for i := range scens {
		s := &scens[i]
		s.cfg.Source = writeLog(t, s.corpus)
		refs[s.name] = soloRef(t, s.cfg)
	}

	state := t.TempDir()
	d, err := daemon.New(daemon.Config{StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	type launched struct{ tenant, scenario string }
	var all []launched
	for _, s := range scens {
		for _, w := range []int{1, 8} {
			cfg := s.cfg
			cfg.Workers = w
			name := fmt.Sprintf("%s-w%d", s.name, w)
			if _, err := d.Upsert(name, cfg); err != nil {
				t.Fatal(err)
			}
			all = append(all, launched{name, s.name})
		}
	}
	for _, l := range all {
		st, err := d.Wait(l.tenant)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" || st.Error != "" {
			t.Fatalf("tenant %s finished state=%s error=%q", l.tenant, st.State, st.Error)
		}
		if st.Buckets == 0 {
			t.Fatalf("tenant %s closed no buckets", l.tenant)
		}
	}
	for _, l := range all {
		mustEqual(t, l.tenant, tenantArtifacts(t, state, l.tenant), refs[l.scenario])
	}
}

// TestDaemonKillResume hard-kills a daemon mid-stream and restarts it:
// each tenant rehydrates from its own checkpoint and store, and the
// concatenated artifacts — model documents, delta lines, DRIFT alerts,
// checkpoint, store segments — are byte-identical to an uninterrupted
// solo run, at Workers 1 and 8.
func TestDaemonKillResume(t *testing.T) {
	for _, w := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			dirXML := writeDirXML(t)
			pairLines := pairCorpus()
			incidentLines := driftCorpus()

			// References: solo, uninterrupted, over the complete corpora.
			pairCfg := daemon.StreamConfig{Method: "l1", MinLogs: 2, BucketSec: 1, WindowBuckets: 2, Workers: w}
			driftCfg := daemon.StreamConfig{Method: "l3", Directory: dirXML, Drift: true, BucketSec: 1, WindowBuckets: 2, Workers: w}
			refPair, refDrift := pairCfg, driftCfg
			refPair.Source = writeLog(t, pairLines)
			refDrift.Source = writeLog(t, incidentLines)
			pairWant := soloRef(t, refPair)
			driftWant := soloRef(t, refDrift)

			// Daemon sources start as prefixes, cut mid-bucket.
			srcDir := t.TempDir()
			pairSrc := filepath.Join(srcDir, "pair.log")
			driftSrc := filepath.Join(srcDir, "drift.log")
			pairCut, driftCut := len(pairLines)*3/5, len(incidentLines)*3/5
			writeLines(t, pairSrc, pairLines[:pairCut])
			writeLines(t, driftSrc, incidentLines[:driftCut])
			pairCfg.Source, pairCfg.Live = pairSrc, true
			driftCfg.Source, driftCfg.Live = driftSrc, true

			state := t.TempDir()
			d1, err := daemon.New(daemon.Config{StateDir: state, PollMillis: 2})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d1.Upsert("pair", pairCfg); err != nil {
				t.Fatal(err)
			}
			if _, err := d1.Upsert("drift", driftCfg); err != nil {
				t.Fatal(err)
			}
			// Let both tenants drain their prefixes, then kill hard.
			for _, name := range []string{"pair", "drift"} {
				if err := d1.WaitIdle(name, 3); err != nil {
					t.Fatal(err)
				}
			}
			d1.Kill()
			st, err := d1.Status("pair")
			if err != nil {
				t.Fatal(err)
			}
			if st.State != "stopped" || st.Buckets == 0 {
				t.Fatalf("killed mid-stream: state=%s buckets=%d, want stopped with progress", st.State, st.Buckets)
			}

			// The streams grow while the daemon is down.
			appendLines(t, pairSrc, pairLines[pairCut:])
			appendLines(t, driftSrc, incidentLines[driftCut:])

			// Restart: Start rehydrates both tenants from stream.json and
			// resumes each from its checkpoint.
			d2, err := daemon.New(daemon.Config{StateDir: state, PollMillis: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := d2.Start(); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"pair", "drift"} {
				if err := d2.WaitIdle(name, 3); err != nil {
					t.Fatal(err)
				}
			}
			// Drain to completion: reconfigure each stream as one-shot; the
			// upsert hard-stops the live engine and the new run finishes at
			// EOF with the end-of-stream flush, exactly like the reference.
			pairCfg.Live, driftCfg.Live = false, false
			if _, err := d2.Upsert("pair", pairCfg); err != nil {
				t.Fatal(err)
			}
			if _, err := d2.Upsert("drift", driftCfg); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"pair", "drift"} {
				st, err := d2.Wait(name)
				if err != nil {
					t.Fatal(err)
				}
				if st.State != "done" || st.Error != "" {
					t.Fatalf("tenant %s finished state=%s error=%q", name, st.State, st.Error)
				}
			}

			mustEqual(t, "pair", tenantArtifacts(t, state, "pair"), pairWant)
			mustEqual(t, "drift", tenantArtifacts(t, state, "drift"), driftWant)
		})
	}
}
