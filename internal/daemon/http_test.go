package daemon_test

// Golden-file tests for the control API: every response — status
// documents, query bodies, error bodies — is pinned byte-for-byte in
// testdata/depmined_*.golden. Regenerate with `go test -update` after an
// intentional API change. Temp-dir paths inside response bodies are
// normalized to stable placeholders before comparison.

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logscape/internal/daemon"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response transcript diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// transcript drives the handler and records "METHOD PATH → code + body"
// blocks, normalizing volatile temp paths to placeholders.
type transcript struct {
	h     http.Handler
	buf   bytes.Buffer
	scrub *strings.Replacer
}

func (tr *transcript) do(t *testing.T, method, path, body string) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	tr.h.ServeHTTP(w, r)
	fmt.Fprintf(&tr.buf, "### %s %s\nHTTP %d\n%s\n", method, path, w.Code, tr.scrub.Replace(w.Body.String()))
}

// TestHTTPGolden scripts the full API surface over two completed tenant
// streams and pins every response: CRUD, status and list documents,
// model/diff/trajectory/alerts queries, and the error bodies for unknown
// tenants, malformed configs, geometry mismatches and bad parameters.
func TestHTTPGolden(t *testing.T) {
	dirXML := writeDirXML(t)
	pairSrc := writeLog(t, pairCorpus())
	incidentSrc := writeLog(t, driftCorpus())

	d, err := daemon.New(daemon.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tr := &transcript{h: d.Handler(), scrub: strings.NewReplacer(
		pairSrc, "PAIR.LOG",
		incidentSrc, "INCIDENT.LOG",
		dirXML, "DIR.XML",
	)}

	pairCfg := fmt.Sprintf(`{"method":"l1","source":%q,"min_logs":2,"bucket_sec":1,"window_buckets":2}`, pairSrc)
	driftCfg := fmt.Sprintf(`{"method":"l3","source":%q,"directory":%q,"drift":true,"bucket_sec":1,"window_buckets":2}`, incidentSrc, dirXML)

	// CRUD: create both streams (deterministic zero-progress responses),
	// wait for completion off-API, then read back status and list.
	tr.do(t, "PUT", "/streams/pairs", pairCfg)
	tr.do(t, "PUT", "/streams/incident", driftCfg)
	for _, name := range []string{"pairs", "incident"} {
		if st, err := d.Wait(name); err != nil || st.State != "done" {
			t.Fatalf("stream %s: state=%v err=%v", name, st.State, err)
		}
	}
	tr.do(t, "GET", "/streams/pairs", "")
	tr.do(t, "GET", "/streams", "")
	checkGolden(t, "depmined_crud", tr.buf.Bytes())
	tr.buf.Reset()

	// Queries: models at an instant and at the default (latest), a diff
	// across the source switch, a trajectory, and the DRIFT alert lines.
	tr.do(t, "GET", "/streams/pairs/model?at=2005-12-06T08:00:02", "")
	tr.do(t, "GET", "/streams/pairs/model", "")
	tr.do(t, "GET", "/streams/pairs/diff?from=2005-12-06T08:00:02&to=2005-12-06T08:00:05", "")
	tr.do(t, "GET", "/streams/pairs/trajectory?key=AppA--AppB", "")
	tr.do(t, "GET", "/streams/incident/trajectory?key=App1-%3EREG", "")
	tr.do(t, "GET", "/streams/incident/alerts", "")
	checkGolden(t, "depmined_queries", tr.buf.Bytes())
	tr.buf.Reset()

	// Errors: unknown tenants, malformed and rejected configs, geometry
	// mismatches, bad query parameters, unretained instants.
	tr.do(t, "GET", "/streams/ghost", "")
	tr.do(t, "DELETE", "/streams/ghost", "")
	tr.do(t, "GET", "/streams/ghost/model", "")
	tr.do(t, "PUT", "/streams/bad%20name", pairCfg)
	tr.do(t, "PUT", "/streams/bad", `{"method":"l9","source":"x.log","bucket_sec":1,"window_buckets":2}`)
	tr.do(t, "PUT", "/streams/bad", `{"method":"l1","source":"x.log","bucket_sec":1,"window_buckets":2,"mystery":1}`)
	tr.do(t, "PUT", "/streams/bad", `{"method":"l1","source":"-","bucket_sec":1,"window_buckets":2}`)
	tr.do(t, "PUT", "/streams/bad", `not json`)
	tr.do(t, "PUT", "/streams/pairs", fmt.Sprintf(`{"method":"l1","source":%q,"min_logs":2,"bucket_sec":5,"window_buckets":9}`, pairSrc))
	tr.do(t, "GET", "/streams/pairs/model?at=bogus", "")
	tr.do(t, "GET", "/streams/pairs/model?at=2001-01-01T00:00:00", "")
	tr.do(t, "GET", "/streams/pairs/diff?from=2005-12-06T08:00:02", "")
	tr.do(t, "GET", "/streams/pairs/trajectory", "")
	checkGolden(t, "depmined_errors", tr.buf.Bytes())
	tr.buf.Reset()

	// Rejected configs never mutate state: the list still holds exactly
	// the two streams, and no "bad" tenant directory appeared.
	if got := len(d.List()); got != 2 {
		t.Fatalf("after rejected PUTs: %d streams, want 2", got)
	}

	// DELETE: remove a stream, then confirm it is gone from the API.
	tr.do(t, "DELETE", "/streams/pairs", "")
	tr.do(t, "GET", "/streams/pairs", "")
	tr.do(t, "GET", "/streams", "")
	checkGolden(t, "depmined_delete", tr.buf.Bytes())
}

// TestHTTPMetricsEndpoints smoke-checks the metrics surfaces (their
// bodies carry timing-dependent values, so they are asserted
// structurally, not pinned).
func TestHTTPMetricsEndpoints(t *testing.T) {
	d, err := daemon.New(daemon.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Upsert("pairs", daemon.StreamConfig{
		Method: "l1", Source: writeLog(t, pairCorpus()), MinLogs: 2, BucketSec: 1, WindowBuckets: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait("pairs"); err != nil {
		t.Fatal(err)
	}
	h := d.Handler()
	for _, path := range []string{"/metrics", "/streams/pairs/metrics"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body)
		}
		if !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
			t.Fatalf("GET %s content type = %q", path, w.Header().Get("Content-Type"))
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/streams/ghost/metrics", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET unknown tenant metrics = %d, want 404", w.Code)
	}
}
