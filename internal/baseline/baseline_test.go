package baseline

import (
	"math/rand"
	"testing"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/pointproc"
)

func span() logmodel.TimeRange {
	return logmodel.TimeRange{Start: 0, End: logmodel.MillisPerHour}
}

func TestDelayHistogramDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := span()
	a := pointproc.Homogeneous(rng, r, 0.3)
	b := make([]logmodel.Millis, len(a))
	for i, ts := range a {
		b[i] = ts + logmodel.Millis(40+rng.Intn(20)) // tight latency band
	}
	h := DelayHistogram(a, b, Config{})
	if h.N() == 0 {
		t.Fatal("empty histogram")
	}
	// Nearly all mass should fall in the first bin (delays ≈ 50 ms,
	// bin width = 2 s / 20 = 100 ms).
	if float64(h.Counts[0]) < 0.9*float64(h.N()) {
		t.Errorf("first bin = %d of %d", h.Counts[0], h.N())
	}
}

func TestTestPairDependentVsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := span()
	a := pointproc.Homogeneous(rng, r, 0.3)
	dep := make([]logmodel.Millis, len(a))
	for i, ts := range a {
		dep[i] = ts + logmodel.Millis(30+rng.Intn(40))
	}
	ind := pointproc.Homogeneous(rng, r, 0.3)

	prDep := TestPair("A", "B", a, dep, Config{})
	if !prDep.Dependent {
		t.Errorf("dependent pair not detected: %+v", prDep)
	}
	prInd := TestPair("A", "C", a, ind, Config{})
	if prInd.Dependent {
		t.Errorf("independent pair flagged: %+v", prInd)
	}
}

func TestTestPairTooFewSamples(t *testing.T) {
	a := []logmodel.Millis{0, 1000}
	b := []logmodel.Millis{10, 1010}
	pr := TestPair("A", "B", a, b, Config{})
	if pr.Dependent {
		t.Error("pair with 2 samples must not be flagged")
	}
	if pr.Samples != 2 {
		t.Errorf("samples = %d", pr.Samples)
	}
}

func TestMineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := span()
	a := pointproc.Homogeneous(rng, r, 0.3)
	b := make([]logmodel.Millis, len(a))
	for i, ts := range a {
		b[i] = ts + logmodel.Millis(25+rng.Intn(30))
	}
	c := pointproc.Homogeneous(rng, r, 0.3)
	store := logmodel.NewStore(0)
	add := func(src string, ts []logmodel.Millis) {
		for _, x := range ts {
			store.Append(logmodel.Entry{Time: x, Source: src, Severity: logmodel.SevInfo})
		}
	}
	add("A", a)
	add("B", b)
	add("C", c)
	store.Sort()

	res := Mine(store, r, nil, Config{})
	dep := res.DependentPairs()
	if !dep[core.MakePair("A", "B")] {
		t.Errorf("A-B missed: %+v", res.Ordered[[2]string{"A", "B"}])
	}
	if dep[core.MakePair("A", "C")] {
		t.Errorf("A-C flagged: %+v", res.Ordered[[2]string{"A", "C"}])
	}
	if len(res.Ordered) != 6 {
		t.Errorf("ordered pairs = %d, want 6", len(res.Ordered))
	}
}

func TestDirectedDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := span()
	a := pointproc.Homogeneous(rng, r, 0.3)
	b := make([]logmodel.Millis, len(a))
	for i, ts := range a {
		b[i] = ts + logmodel.Millis(25+rng.Intn(30))
	}
	store := logmodel.NewStore(0)
	for _, x := range a {
		store.Append(logmodel.Entry{Time: x, Source: "A", Severity: logmodel.SevInfo})
	}
	for _, x := range b {
		store.Append(logmodel.Entry{Time: x, Source: "B", Severity: logmodel.SevInfo})
	}
	store.Sort()
	res := Mine(store, r, nil, Config{})
	dir := res.DirectedDependencies()
	// The A→B direction must be detected: B reacts to A with a tight delay.
	found := false
	for _, d := range dir {
		if d == [2]string{"A", "B"} {
			found = true
		}
	}
	if !found {
		t.Errorf("A→B not in directed dependencies: %v", dir)
	}
}

// TestParallelismDegradation reproduces the paper's observation about this
// baseline: its accuracy is "inversely proportional to the degree of
// parallelism (number of users) in the system". Superimposing unrelated
// activity on A degrades the detection of A→B.
func TestParallelismDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := span()
	base := pointproc.Homogeneous(rng, r, 0.2)
	b := make([]logmodel.Millis, len(base))
	for i, ts := range base {
		b[i] = ts + logmodel.Millis(30+rng.Intn(30))
	}
	// Low parallelism: A is only the triggering activity.
	low := TestPair("A", "B", base, b, Config{})
	// High parallelism: A also carries 20× unrelated activity, and B
	// carries unrelated responses.
	noiseA := pointproc.Homogeneous(rng, r, 4)
	noiseB := pointproc.Homogeneous(rng, r, 4)
	aHigh := pointproc.MergeSorted(base, noiseA)
	bHigh := pointproc.MergeSorted(b, noiseB)
	high := TestPair("A", "B", aHigh, bHigh, Config{})
	if !low.Dependent {
		t.Fatalf("low-parallelism case not detected: %+v", low)
	}
	// The per-sample effect size (X²/N, a Cramér-style normalization) must
	// collapse under parallelism even though the raw statistic grows with
	// the sample count.
	lowEffect := low.X2 / float64(low.Samples)
	highEffect := high.X2 / float64(high.Samples)
	if highEffect >= lowEffect/2 {
		t.Errorf("effect did not degrade: low %.2f, high %.2f", lowEffect, highEffect)
	}
}

func TestMaxSamplesCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := span()
	a := pointproc.Homogeneous(rng, r, 10) // 36k events
	b := pointproc.Homogeneous(rng, r, 10)
	cfg := Config{MaxSamples: 100}
	h := DelayHistogram(a, b, cfg.withDefaults())
	if h.N() > 400 {
		t.Errorf("histogram N = %d, want ≤ ~2×MaxSamples", h.N())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 2*logmodel.MillisPerSecond || c.Bins != 20 ||
		c.MinSamples != 50 || c.MaxSamples != 5000 {
		t.Errorf("defaults = %+v", c)
	}
}
