package baseline

import (
	"math"
	"sort"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/parallel"
	"logscape/internal/pointproc"
	"logscape/internal/stats"
)

// Config parameterizes the baseline.
type Config struct {
	// Window is the maximal delay considered (default 2 s).
	Window logmodel.Millis
	// Bins is the number of histogram bins (default 20).
	Bins int
	// Alpha is the significance level of the uniformity test (default
	// 1e-4; the delay samples are large).
	Alpha float64
	// MinSamples is the minimum number of in-window delays required to
	// test a pair (default 50).
	MinSamples int
	// MaxSamples caps the number of source events examined per pair
	// (default 5000, to bound cost on high-volume pairs).
	MaxSamples int
	// Workers bounds the mining parallelism (candidate ordered pairs fan
	// out over a worker pool for delay-histogram construction): 0 selects
	// GOMAXPROCS, 1 forces the exact sequential path. Results are
	// identical for every setting.
	Workers int
	// Metrics, when non-nil, collects per-stage counters and timing
	// histograms (see internal/obs). Collection never changes the mined
	// model, and counter values are identical for every Workers setting.
	Metrics *obs.Registry
}

// DefaultConfig returns the baseline's calibrated configuration with every
// threshold field set explicitly — the sanctioned base for call sites that
// only want to tune Workers (see the cfgzero analyzer).
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 2 * logmodel.MillisPerSecond
	}
	if c.Bins == 0 {
		c.Bins = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 1e-4
	}
	if c.MinSamples == 0 {
		c.MinSamples = 50
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 5000
	}
	return c
}

// PairResult is the outcome for one ordered pair (A, B).
type PairResult struct {
	From, To string
	// Samples is the number of in-window delays observed.
	Samples int64
	// X2 and PValue are the uniformity test results.
	X2     float64
	PValue float64
	// Dependent is the decision: enough samples and uniformity rejected.
	Dependent bool
}

// Result is the mined model.
type Result struct {
	// Ordered holds the per-ordered-pair outcomes.
	Ordered map[[2]string]PairResult
	// Config is the effective configuration.
	Config Config
}

// DependentPairs returns the undirected union of dependent ordered pairs.
func (r *Result) DependentPairs() core.PairSet {
	out := make(core.PairSet)
	for k, pr := range r.Ordered {
		if pr.Dependent {
			out[core.MakePair(k[0], k[1])] = true
		}
	}
	return out
}

// DirectedDependencies returns the dependent ordered pairs as (from, to)
// tuples — unlike L1 and L2, the delay-histogram technique is inherently
// directional: a peaked delay from A's activity to B's next activity
// indicates that B reacts to A.
func (r *Result) DirectedDependencies() [][2]string {
	var out [][2]string
	for k, pr := range r.Ordered {
		if pr.Dependent {
			out = append(out, k)
		}
	}
	sortDirected(out)
	return out
}

func sortDirected(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// DelayHistogram builds the histogram of delays from each point of a to the
// next point of b within the window. Both sequences must be sorted.
func DelayHistogram(a, b []logmodel.Millis, cfg Config) *stats.Histogram {
	cfg = cfg.withDefaults()
	h := stats.NewHistogram(0, float64(cfg.Window)/1000, cfg.Bins)
	step := 1
	if len(a) > cfg.MaxSamples {
		step = len(a) / cfg.MaxSamples
	}
	for i := 0; i < len(a); i += step {
		d := pointproc.DistNext(a[i], b)
		if d == logmodel.Millis(math.MaxInt64) {
			continue
		}
		h.Add(d.Seconds())
	}
	return h
}

// TestPair tests the ordered pair (A → B) given their sorted timestamp
// sequences.
func TestPair(from, to string, a, b []logmodel.Millis, cfg Config) PairResult {
	cfg = cfg.withDefaults()
	h := DelayHistogram(a, b, cfg)
	pr := PairResult{From: from, To: to, Samples: h.N()}
	if pr.Samples < int64(cfg.MinSamples) {
		return pr
	}
	u, err := stats.ChiSquaredUniformity(h)
	if err != nil {
		return pr
	}
	pr.X2, pr.PValue = u.X2, u.PValue
	pr.Dependent = u.NonUniform(cfg.Alpha)
	return pr
}

// Mine runs the baseline over the given time range of the store for the
// listed sources (all store sources when nil). Candidate ordered pairs are
// enumerated in source order and fanned out over Config.Workers workers;
// TestPair is deterministic, so the result is identical for every worker
// count.
func Mine(store *logmodel.Store, r logmodel.TimeRange, sources []string, cfg Config) *Result {
	cfg = cfg.withDefaults()
	if sources == nil {
		sources = store.Sources()
	}
	idx := store.SourceIndexRange(r)
	var cands [][2]string
	for _, from := range sources {
		if len(idx[from]) == 0 {
			continue
		}
		for _, to := range sources {
			if from == to || len(idx[to]) == 0 {
				continue
			}
			cands = append(cands, [2]string{from, to})
		}
	}
	defer cfg.Metrics.Timer("baseline.mine_ns")()
	results := parallel.Map(parallel.Workers(cfg.Workers), len(cands),
		obs.Meter(cfg.Metrics, "baseline.pairs_tested", func(i int) PairResult {
			c := cands[i]
			return TestPair(c[0], c[1], idx[c[0]], idx[c[1]], cfg)
		}))
	res := &Result{Ordered: make(map[[2]string]PairResult, len(cands)), Config: cfg}
	samples, dependent := int64(0), int64(0)
	for i, c := range cands {
		res.Ordered[c] = results[i]
		samples += results[i].Samples
		if results[i].Dependent {
			dependent++
		}
	}
	cfg.Metrics.Counter("baseline.delay_samples").Add(samples)
	cfg.Metrics.Counter("baseline.dependent_pairs").Add(dependent)
	return res
}
