// Package baseline implements the delay-histogram technique of Agrawal et
// al. (IBM Research, 2004), the closest non-intrusive related work the
// paper discusses (§2.1): "one builds histograms of delays and performs a
// χ² test to measure the deviation from a uniformly random distribution".
//
// For an ordered pair of components (A, B), the delay from each activity of
// A to the next activity of B within a window is recorded; if B depends on
// A (or responds to it), the delays concentrate around the typical service
// latency, whereas for independent components they are close to uniform
// over the window. A chi-squared goodness-of-fit test against uniformity
// decides dependence.
//
// The technique serves as a comparison baseline for L1: both use only
// (source, timestamp) information, and the paper notes the approach's
// "accuracy and precision ... are inversely proportional to the degree of
// parallelism (number of users) in the system".
//
// See DESIGN.md §3 (System inventory) and §4 (Experiment index).
package baseline
