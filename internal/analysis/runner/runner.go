// Package runner executes the lintscape analyzer suite over a set of
// packages: it loads them, runs the per-package analyzers in parallel and
// the program-level (dataflow) analyzers over the whole load, applies the
// severity configuration and the //lint:allow directives, and returns the
// surviving findings sorted deterministically. cmd/lintscape and the
// dogfood self-check test share this one implementation so the CLI and the
// test cannot drift.
package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"logscape/internal/analysis"
	"logscape/internal/analysis/load"
	"logscape/internal/parallel"
)

// Options configures one Run.
type Options struct {
	// Dir is the working directory for the go command (default: cwd).
	Dir string
	// Patterns are the package patterns to analyze (default: ./...).
	Patterns []string
	// Tests includes in-package and external _test.go files.
	Tests bool
	// Workers bounds the load and per-package analysis parallelism
	// (0 = GOMAXPROCS, 1 = sequential). Program-level analysis is
	// single-threaded regardless, so findings are identical at any width.
	Workers int
	// ConfigPath names an explicit severity configuration file. When
	// empty, the module root's .lintscape.json is used if present.
	ConfigPath string
	// Known is the registered analyzer name set, used to validate the
	// severity configuration (typo'd names are load errors, not silence).
	Known map[string]bool
}

// Result is the outcome of a Run.
type Result struct {
	// Findings are the surviving findings (severity applied, directives
	// filtered), in SortFindings order. File names are module-relative.
	Findings []analysis.Finding
	// ModuleDir is the main module root the load resolved.
	ModuleDir string
}

// Run loads the packages and applies the full suite.
func Run(suite []*analysis.Analyzer, opts Options) (*Result, error) {
	res, err := load.Load(load.Options{
		Dir: opts.Dir, Patterns: opts.Patterns,
		Tests: opts.Tests, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	var loadErrs []string
	for _, pkg := range res.Packages {
		for _, e := range pkg.Errors {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", pkg.ImportPath, e))
		}
	}
	if len(loadErrs) > 0 {
		return nil, errors.New(strings.Join(loadErrs, "\n"))
	}

	cfg, err := severityConfig(opts.ConfigPath, res.ModuleDir, opts.Known)
	if err != nil {
		return nil, err
	}

	perPkg := parallel.Map(parallel.Workers(opts.Workers), len(res.Packages), func(i int) []analysis.Finding {
		return checkPackage(res.Packages[i], suite, cfg, res.ModuleDir)
	})
	var findings []analysis.Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	findings = append(findings, checkProgram(res, suite, cfg)...)

	allSources := make(map[string][]byte)
	for _, pkg := range res.Packages {
		for name, src := range pkg.Sources {
			allSources[name] = src
		}
	}
	findings = analysis.FilterByDirectives(findings, allSources)
	analysis.SortFindings(findings)
	return &Result{Findings: findings, ModuleDir: res.ModuleDir}, nil
}

// checkPackage runs every non-off per-package analyzer over one package.
func checkPackage(pkg *load.Package, suite []*analysis.Analyzer, cfg *analysis.SeverityConfig, moduleDir string) []analysis.Finding {
	var findings []analysis.Finding
	for _, a := range suite {
		if a.Run == nil {
			continue
		}
		sev := cfg.Severity(pkg.RelDir, a.Name)
		if sev == analysis.SeverityOff {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sources:   pkg.Sources,
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name, Pos: pos,
					File: relFile(moduleDir, pos.Filename), Line: pos.Line, Col: pos.Column,
					Message:  d.Message,
					Severity: sev,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			findings = append(findings, analysis.Finding{
				Analyzer: a.Name, File: pkg.RelDir,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Severity: analysis.SeverityError,
			})
		}
	}
	return findings
}

// checkProgram runs the program-level analyzers once over the whole load.
// Per-directory severity is resolved from the unit a diagnostic is
// attributed to.
func checkProgram(res *load.Result, suite []*analysis.Analyzer, cfg *analysis.SeverityConfig) []analysis.Finding {
	units := make([]*analysis.ProgramUnit, 0, len(res.Packages))
	relDirs := make(map[*analysis.ProgramUnit]string, len(res.Packages))
	for _, pkg := range res.Packages {
		u := &analysis.ProgramUnit{
			Pkg: pkg.Types, Files: pkg.Files, Info: pkg.Info,
			RelDir: pkg.RelDir, Sources: pkg.Sources,
		}
		units = append(units, u)
		relDirs[u] = pkg.RelDir
	}

	var findings []analysis.Finding
	for _, a := range suite {
		if a.RunProgram == nil {
			continue
		}
		pass := &analysis.ProgramPass{
			Analyzer: a,
			Fset:     res.Fset,
			Units:    units,
			Report: func(u *analysis.ProgramUnit, d analysis.Diagnostic) {
				sev := cfg.Severity(relDirs[u], a.Name)
				if sev == analysis.SeverityOff {
					return
				}
				pos := res.Fset.Position(d.Pos)
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name, Pos: pos,
					File: relFile(res.ModuleDir, pos.Filename), Line: pos.Line, Col: pos.Column,
					Message:  d.Message,
					Severity: sev,
				})
			},
		}
		if err := a.RunProgram(pass); err != nil {
			findings = append(findings, analysis.Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Severity: analysis.SeverityError,
			})
		}
	}
	return findings
}

// severityConfig loads the explicit config, or the module's
// .lintscape.json when present, or returns nil (everything
// error-severity).
func severityConfig(configPath, moduleDir string, known map[string]bool) (*analysis.SeverityConfig, error) {
	if configPath != "" {
		return analysis.LoadSeverityConfig(configPath, known)
	}
	if moduleDir != "" {
		def := filepath.Join(moduleDir, ".lintscape.json")
		if _, err := os.Stat(def); err == nil {
			return analysis.LoadSeverityConfig(def, known)
		}
	}
	return nil, nil
}

// relFile renders a finding file name relative to the module root.
func relFile(moduleDir, file string) string {
	if moduleDir != "" {
		if rel, err := filepath.Rel(moduleDir, file); err == nil {
			return filepath.ToSlash(rel)
		}
	}
	return file
}
