package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"logscape/internal/parallel"
)

// Package is one parsed and type-checked target package.
type Package struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Dir is the absolute package directory.
	Dir string
	// RelDir is Dir relative to the module root with forward slashes
	// ("." for the root package) — the key severity configuration uses.
	RelDir string
	// Fset is the shared file set of the load.
	Fset *token.FileSet
	// Files are the parsed source files (GoFiles, plus in-package test
	// files when Options.Tests is set).
	Files []*ast.File
	// Types and Info are the type-checked package and its type
	// information.
	Types *types.Package
	Info  *types.Info
	// Sources maps each file name (as recorded in Fset positions) to its
	// raw content, for directive scanning.
	Sources map[string][]byte
	// Errors holds type-checking errors, if any. Analyzers still run on
	// packages with errors, but the driver reports them.
	Errors []error
}

// Options configures a Load.
type Options struct {
	// Dir is the working directory for the go command (default: cwd).
	Dir string
	// Patterns are the package patterns to load (default: ./...).
	Patterns []string
	// Tests includes in-package _test.go files in each target package
	// (external _test packages are not loaded).
	Tests bool
	// Workers bounds the type-checking parallelism as in
	// internal/parallel: 0 means GOMAXPROCS, 1 forces sequential.
	Workers int
}

// Result is the outcome of a Load.
type Result struct {
	// Packages are the target packages in `go list` order.
	Packages []*Package
	// ModuleDir and ModulePath describe the main module.
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	DepOnly      bool
	Module       *struct {
		Path string
		Dir  string
		Main bool
	}
	Error *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching the patterns.
func Load(opts Options) (*Result, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	res := &Result{Fset: token.NewFileSet()}
	resolver := newResolver(opts.Dir)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			resolver.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
			if res.ModuleDir == "" && p.Module != nil && p.Module.Main {
				res.ModuleDir = p.Module.Dir
				res.ModulePath = p.Module.Path
			}
			// External test packages (package foo_test) type-check as their
			// own compilation unit importing the package under test, so they
			// become synthetic extra targets.
			if opts.Tests && len(p.XTestGoFiles) > 0 {
				xt := p
				xt.ImportPath = p.ImportPath + " [external test]"
				xt.GoFiles = p.XTestGoFiles
				xt.TestGoFiles = nil
				xt.Export = ""
				targets = append(targets, xt)
			}
		}
	}

	pkgs := parallel.Map(parallel.Workers(opts.Workers), len(targets), func(i int) *Package {
		return loadOne(res, targets[i], resolver, opts.Tests)
	})
	res.Packages = pkgs
	return res, nil
}

// loadOne parses and type-checks one target package.
func loadOne(res *Result, lp listPackage, r *resolver, tests bool) *Package {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		RelDir:     relDir(res.ModuleDir, lp.Dir),
		Fset:       res.Fset,
		Sources:    make(map[string][]byte),
	}
	names := append([]string{}, lp.GoFiles...)
	if tests {
		names = append(names, lp.TestGoFiles...)
	}
	for _, name := range names {
		full := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Sources[full] = src
		f, err := parser.ParseFile(res.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = NewInfo()
	conf := types.Config{
		// Each package gets its own importer instance: the gc importer's
		// internal package cache is not safe for the concurrent
		// type-checking the worker pool does.
		Importer: importer.ForCompiler(res.Fset, "gc", r.lookup),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, res.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Types = tpkg
	return pkg
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func relDir(moduleDir, dir string) string {
	if moduleDir == "" {
		return "."
	}
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil {
		return "."
	}
	return filepath.ToSlash(rel)
}

// resolver maps import paths to compiler export data files, falling back
// to an on-demand `go list -export` for paths outside the initial -deps
// closure (e.g. test-only imports when Options.Tests is set).
type resolver struct {
	dir     string
	mu      sync.Mutex
	exports map[string]string
}

func newResolver(dir string) *resolver {
	return &resolver{dir: dir, exports: make(map[string]string)}
}

// lookup is the go/importer lookup function: it returns a reader of the
// export data for an import path.
func (r *resolver) lookup(path string) (io.ReadCloser, error) {
	r.mu.Lock()
	file, ok := r.exports[path]
	if !ok {
		out, err := r.listExport(path)
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		file = out
		r.exports[path] = file
	}
	r.mu.Unlock()
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// listExport asks the go command for the export data file of one package.
// Callers hold r.mu.
func (r *resolver) listExport(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
	cmd.Dir = r.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	return strings.TrimSpace(string(out)), nil
}

// StdResolver returns a resolver suitable for type-checking synthetic
// packages (e.g. analysistest fixtures) whose imports are resolved
// entirely on demand.
func StdResolver(dir string) func(path string) (io.ReadCloser, error) {
	return newResolver(dir).lookup
}
