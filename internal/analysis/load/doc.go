// Package load resolves, parses and type-checks the packages lintscape
// analyzes. It is a minimal offline replacement for
// golang.org/x/tools/go/packages built entirely on the standard library:
// package metadata comes from `go list -export -json -deps`, imports are
// satisfied from the compiler export data the go command already produces
// into its build cache, and only the target packages themselves are
// type-checked from source. This keeps a whole-repo load to one go-command
// invocation plus one types.Check per target package.
//
// See DESIGN.md §8 (Static invariants).
package load
