package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"logscape/internal/analysis"
	"logscape/internal/analysis/load"
)

// Run applies the analyzer to each fixture package (import paths under
// testdata/src relative to the calling test's directory) and reports any
// mismatch against the // want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		testdata: testdata,
		fset:     fset,
		gc:       importer.ForCompiler(fset, "gc", load.StdResolver("")),
		cache:    make(map[string]*fixturePkg),
	}
	for _, pkg := range pkgs {
		runOne(t, ld, a, pkg)
	}
}

// RunProgram applies a program-level analyzer (Analyzer.RunProgram) to the
// fixture packages as one program: every listed package, plus every sibling
// fixture package any of them imports, becomes a ProgramUnit, so
// interprocedural flows across fixture packages are summarized. Diagnostics
// are matched against // want expectations; exported summary facts are
// matched against // wantfact expectations anchored to the line of the
// function declaration they describe.
func RunProgram(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if a.RunProgram == nil {
		t.Fatalf("%s: analyzer has no RunProgram", a.Name)
	}
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		testdata: testdata,
		fset:     fset,
		gc:       importer.ForCompiler(fset, "gc", load.StdResolver("")),
		cache:    make(map[string]*fixturePkg),
	}
	for _, pkg := range pkgs {
		fp, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("%s: loading fixture %s: %v", a.Name, pkg, err)
		}
		for _, err := range fp.errors {
			t.Errorf("%s: fixture %s: type error: %v", a.Name, pkg, err)
		}
	}

	// Deterministic unit order over everything loaded (including imported
	// sibling fixtures).
	paths := make([]string, 0, len(ld.cache))
	for p := range ld.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var units []*analysis.ProgramUnit
	allSources := make(map[string][]byte)
	for _, p := range paths {
		fp := ld.cache[p]
		units = append(units, &analysis.ProgramUnit{
			Pkg: fp.pkg, Files: fp.files, Info: fp.info,
			RelDir: p, Sources: fp.sources,
		})
		for name, src := range fp.sources {
			allSources[name] = src
		}
	}

	var findings []analysis.Finding
	type factRec struct {
		file string
		line int
		fact string
	}
	var facts []factRec
	pass := &analysis.ProgramPass{
		Analyzer: a,
		Fset:     fset,
		Units:    units,
		Report: func(u *analysis.ProgramUnit, d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			findings = append(findings, analysis.Finding{
				Analyzer: a.Name, Pos: pos,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: d.Message,
			})
		},
		ExportFact: func(pos token.Pos, fact string) {
			p := fset.Position(pos)
			facts = append(facts, factRec{p.Filename, p.Line, fact})
		},
	}
	if err := a.RunProgram(pass); err != nil {
		t.Fatalf("%s: RunProgram: %v", a.Name, err)
	}

	findings = analysis.FilterByDirectives(findings, allSources)
	analysis.SortFindings(findings)

	wants := parseWants(t, allSources)
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, rel(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, rel(w.file), w.line, w.re.String())
	}

	// Fact expectations: every // wantfact must match some exported fact on
	// its line. Facts without expectations are not errors (summaries are
	// voluminous); only missing expected facts are.
	for _, w := range parseFactWants(t, allSources).wants {
		found := false
		for _, f := range facts {
			if f.file == w.file && f.line == w.line && w.re.MatchString(f.fact) {
				found = true
				break
			}
		}
		if !found {
			var nearby []string
			for _, f := range facts {
				if f.file == w.file && f.line == w.line {
					nearby = append(nearby, f.fact)
				}
			}
			t.Errorf("%s: no exported fact at %s:%d matching %q (facts on line: %v)",
				a.Name, rel(w.file), w.line, w.re.String(), nearby)
		}
	}
}

func runOne(t *testing.T, ld *fixtureLoader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
	}
	for _, err := range fp.errors {
		t.Errorf("%s: fixture %s: type error: %v", a.Name, pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Sources:   fp.sources,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: Run: %v", a.Name, err)
	}

	findings := make([]analysis.Finding, 0, len(diags))
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		findings = append(findings, analysis.Finding{
			Analyzer: a.Name, Pos: pos,
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: d.Message,
		})
	}
	findings = analysis.FilterByDirectives(findings, fp.sources)
	analysis.SortFindings(findings)

	wants := parseWants(t, fp.sources)
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, rel(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, rel(w.file), w.line, w.re.String())
	}
}

func rel(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, name); err == nil {
			return r
		}
	}
	return name
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

var (
	wantRe     = regexp.MustCompile("//\\s*want\\s+(`([^`]*)`|\"([^\"]*)\")")
	wantFactRe = regexp.MustCompile("//\\s*wantfact\\s+(`([^`]*)`|\"([^\"]*)\")")
)

func parseWants(t *testing.T, sources map[string][]byte) *wantSet {
	t.Helper()
	return parseWantsRe(t, sources, wantRe)
}

func parseFactWants(t *testing.T, sources map[string][]byte) *wantSet {
	t.Helper()
	return parseWantsRe(t, sources, wantFactRe)
}

func parseWantsRe(t *testing.T, sources map[string][]byte, re *regexp.Regexp) *wantSet {
	t.Helper()
	ws := &wantSet{}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i, line := range strings.Split(string(sources[name]), "\n") {
			m := re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[2]
			if pat == "" {
				pat = m[3]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
			}
			ws.wants = append(ws.wants, &want{file: name, line: i + 1, re: re})
		}
	}
	return ws
}

func (ws *wantSet) match(f analysis.Finding) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// fixturePkg is one parsed and type-checked fixture package.
type fixturePkg struct {
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	sources map[string][]byte
	errors  []error
}

// fixtureLoader type-checks fixture packages, resolving sibling fixture
// imports from source and everything else through export data.
type fixtureLoader struct {
	testdata string
	fset     *token.FileSet
	// gc is a single shared export-data importer so that all fixture
	// packages see identical *types.Package instances for e.g. "sync".
	gc       types.Importer
	cache    map[string]*fixturePkg
	checking []string // import cycle guard
}

func (ld *fixtureLoader) load(pkgPath string) (*fixturePkg, error) {
	if fp, ok := ld.cache[pkgPath]; ok {
		return fp, nil
	}
	for _, p := range ld.checking {
		if p == pkgPath {
			return nil, errImportCycle(pkgPath)
		}
	}
	ld.checking = append(ld.checking, pkgPath)
	defer func() { ld.checking = ld.checking[:len(ld.checking)-1] }()

	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{sources: make(map[string][]byte)}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		fp.sources[full] = src
		f, err := parser.ParseFile(ld.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		fp.files = append(fp.files, f)
	}

	fp.info = load.NewInfo()
	conf := types.Config{
		Importer: &fixtureImporter{ld: ld},
		Error:    func(err error) { fp.errors = append(fp.errors, err) },
	}
	fp.pkg, _ = conf.Check(pkgPath, ld.fset, fp.files, fp.info)
	ld.cache[pkgPath] = fp
	return fp, nil
}

type errImportCycle string

func (e errImportCycle) Error() string { return "fixture import cycle through " + string(e) }

// fixtureImporter satisfies types.Importer for fixture type-checking.
type fixtureImporter struct{ ld *fixtureLoader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	// Sibling fixture package?
	if dir := filepath.Join(fi.ld.testdata, "src", filepath.FromSlash(path)); isDir(dir) {
		fp, err := fi.ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return fi.ld.gc.Import(path)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
