// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line earns a diagnostic by carrying a comment of the form
//
//	code() // want `regexp`
//
// (a double-quoted form is accepted too). Every reported diagnostic must
// match a want on its line and every want must be matched — so fixtures
// demonstrate both flagged and allowed cases. //lint:allow directives are
// honored exactly as the driver honors them, which lets fixtures assert
// the suppression path as well.
//
// Fixture imports are resolved from source for sibling fixture packages
// (testdata/src/<path>) and from `go list -export` compiler export data
// for everything else, so fixtures may import the standard library freely
// without testdata ever being part of the module build.
//
// See DESIGN.md §8 (Static invariants).
package analysistest
