package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSeverityConfigValidation exercises the configuration-file
// validation: misspelled top-level keys, unknown analyzer names and bad
// severity keywords must be load errors so that a typo in .lintscape.json
// cannot silently configure nothing.
func TestLoadSeverityConfigValidation(t *testing.T) {
	known := map[string]bool{"maporder": true, "wallclock": true, "viewescape": true}
	cases := []struct {
		name string
		json string
		// wantErr is a substring the load error must contain; "" means the
		// load must succeed.
		wantErr string
	}{
		{
			name:    "valid",
			json:    `{"default": {"maporder": "warn"}, "dirs": {"internal/x": {"wallclock": "off"}}}`,
			wantErr: "",
		},
		{
			name:    "empty object",
			json:    `{}`,
			wantErr: "",
		},
		{
			name:    "misspelled top-level key",
			json:    `{"defaults": {"maporder": "warn"}}`,
			wantErr: `unknown field "defaults"`,
		},
		{
			name:    "severity map at top level",
			json:    `{"maporder": "warn"}`,
			wantErr: `unknown field "maporder"`,
		},
		{
			name:    "unknown analyzer in default",
			json:    `{"default": {"mapordr": "warn"}}`,
			wantErr: `unknown analyzer "mapordr"`,
		},
		{
			name:    "unknown analyzer in dirs",
			json:    `{"dirs": {"internal/x": {"viewscape": "off"}}}`,
			wantErr: `unknown analyzer "viewscape"`,
		},
		{
			name:    "bad severity keyword",
			json:    `{"default": {"maporder": "warning"}}`,
			wantErr: `unknown severity "warning"`,
		},
		{
			name:    "absolute dirs key",
			json:    `{"dirs": {"/internal/x": {"maporder": "off"}}}`,
			wantErr: "clean module-relative path",
		},
		{
			name:    "unclean dirs key",
			json:    `{"dirs": {"internal//x": {"maporder": "off"}}}`,
			wantErr: "clean module-relative path",
		},
		{
			name:    "not json",
			json:    `default: maporder warn`,
			wantErr: "invalid character",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := filepath.Join(t.TempDir(), ".lintscape.json")
			if err := os.WriteFile(file, []byte(tc.json), 0o644); err != nil {
				t.Fatal(err)
			}
			cfg, err := LoadSeverityConfig(file, known)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("LoadSeverityConfig: %v", err)
				}
				if cfg == nil {
					t.Fatal("LoadSeverityConfig returned nil config without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("LoadSeverityConfig accepted %s; want error containing %q", tc.json, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestLoadSeverityConfigNilKnown checks that a nil known set skips the
// name check but still validates shape and severities.
func TestLoadSeverityConfigNilKnown(t *testing.T) {
	file := filepath.Join(t.TempDir(), ".lintscape.json")
	if err := os.WriteFile(file, []byte(`{"default": {"anything": "warn"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeverityConfig(file, nil); err != nil {
		t.Fatalf("nil known set must skip the name check: %v", err)
	}
	if err := os.WriteFile(file, []byte(`{"default": {"anything": "loud"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeverityConfig(file, nil); err == nil {
		t.Fatal("bad severity keyword must still be rejected with a nil known set")
	}
}

// TestSeverityResolution pins the precedence: longest matching dirs
// prefix, then default, then error.
func TestSeverityResolution(t *testing.T) {
	cfg := &SeverityConfig{
		Default: map[string]string{"maporder": "warn"},
		Dirs: map[string]map[string]string{
			"internal":        {"maporder": "off"},
			"internal/stream": {"maporder": "error"},
		},
	}
	cases := []struct {
		relDir string
		want   Severity
	}{
		{"internal/stream", SeverityError},
		{"internal/stream/deep", SeverityError},
		{"internal/other", SeverityOff},
		{"cmd/logscape", SeverityWarn},
	}
	for _, tc := range cases {
		if got := cfg.Severity(tc.relDir, "maporder"); got != tc.want {
			t.Errorf("Severity(%q, maporder) = %v, want %v", tc.relDir, got, tc.want)
		}
	}
	if got := cfg.Severity("internal/stream", "wallclock"); got != SeverityError {
		t.Errorf("unconfigured analyzer severity = %v, want error", got)
	}
	var nilCfg *SeverityConfig
	if got := nilCfg.Severity("anywhere", "maporder"); got != SeverityError {
		t.Errorf("nil config severity = %v, want error", got)
	}
}
