package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, severity configuration
	// and //lint:allow directives. It must be a lowercase identifier.
	Name string
	// Doc is the one-paragraph description printed by `lintscape -list`:
	// the invariant the analyzer encodes and how to satisfy it.
	Doc string
	// Run applies the analyzer to one package. The result value is unused
	// by the driver (it exists for x/tools API compatibility).
	Run func(*Pass) (any, error)
	// RunProgram, when non-nil, marks a program-level analyzer: instead of
	// Run being called once per package, RunProgram is called once with
	// every loaded package, so the analyzer can build cross-package call
	// graphs and function summaries (see internal/analysis/dataflow). An
	// analyzer sets exactly one of Run and RunProgram.
	RunProgram func(*ProgramPass) error
}

// Pass carries one analyzed package through an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sources maps each file name (as recorded in Fset positions) to its
	// raw content, for analyzers that inspect comments or directives
	// textually (e.g. allowaudit). May be nil for drivers that do not
	// retain sources.
	Sources map[string][]byte
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// ProgramUnit is one package as seen by a program-level analyzer.
type ProgramUnit struct {
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
	// RelDir is the package directory relative to the module root (the
	// severity-configuration key). Drivers without a module root use ".".
	RelDir string
	// Sources maps file names to raw content, for directive scanning.
	Sources map[string][]byte
}

// ProgramPass carries the whole loaded program through an Analyzer's
// RunProgram function.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Units are the loaded packages, in deterministic (load) order.
	// Program analyzers must not depend on the order beyond determinism.
	Units []*ProgramUnit
	// Report delivers one diagnostic, attributed to the unit it was found
	// in so the driver can resolve per-directory severity.
	Report func(*ProgramUnit, Diagnostic)
	// ExportFact, when non-nil, receives one human-readable fact string
	// per function-summary fact the analyzer derives (anchored at the
	// function's declaration). The test harness matches these against
	// // wantfact expectations; drivers leave it nil.
	ExportFact func(token.Pos, string)
}

// Reportf reports a formatted diagnostic at pos, attributed to unit.
func (p *ProgramPass) Reportf(unit *ProgramUnit, pos token.Pos, format string, args ...any) {
	p.Report(unit, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Finding is a Diagnostic resolved to a concrete position and annotated
// with its analyzer and severity; the driver's unit of output.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Severity Severity       `json:"severity"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// SortFindings orders findings by file, line, column, analyzer and message
// — the deterministic output order of the driver.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
