package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

// Severity is the driver-level weight of a finding.
type Severity int

// Severity levels: Off discards the finding, Warn prints it without
// failing the run, Error prints it and makes the driver exit non-zero.
const (
	SeverityError Severity = iota
	SeverityWarn
	SeverityOff
)

// String renders the severity as its configuration keyword.
func (s Severity) String() string {
	switch s {
	case SeverityOff:
		return "off"
	case SeverityWarn:
		return "warn"
	default:
		return "error"
	}
}

// MarshalJSON emits the configuration keyword.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

func parseSeverity(s string) (Severity, error) {
	switch s {
	case "error":
		return SeverityError, nil
	case "warn":
		return SeverityWarn, nil
	case "off":
		return SeverityOff, nil
	}
	return SeverityError, fmt.Errorf("unknown severity %q (want error, warn or off)", s)
}

// SeverityConfig is the per-directory severity configuration of the
// driver, loaded from a JSON file (.lintscape.json at the module root by
// convention):
//
//	{
//	  "default": {"maporder": "warn"},
//	  "dirs": {"internal/parallel": {"bareconc": "off"}}
//	}
//
// Directory keys are slash-separated paths relative to the module root;
// the longest matching prefix (on whole path segments) wins, then the
// default map, then SeverityError.
type SeverityConfig struct {
	Default map[string]string            `json:"default"`
	Dirs    map[string]map[string]string `json:"dirs"`
}

// LoadSeverityConfig reads and validates a severity configuration file.
// known is the set of registered analyzer names: analyzer keys outside it
// are rejected, so a typo in .lintscape.json cannot silently configure
// nothing. A nil known set skips the name check (for tools that validate
// shape only). Unknown top-level keys (e.g. "defaults" for "default") are
// rejected by the JSON decoder.
func LoadSeverityConfig(file string, known map[string]bool) (*SeverityConfig, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var cfg SeverityConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("%s: %v (top-level keys are \"default\" and \"dirs\")", file, err)
	}
	if err := cfg.validate(known); err != nil {
		return nil, fmt.Errorf("%s: %v", file, err)
	}
	return &cfg, nil
}

func (c *SeverityConfig) validate(known map[string]bool) error {
	checkName := func(where, a string) error {
		if known != nil && !known[a] {
			return fmt.Errorf("%s: unknown analyzer %q (known: %s)", where, a, knownList(known))
		}
		return nil
	}
	// Validation walks keys in sorted order so that a file with several
	// problems reports the same one every run.
	for _, a := range sortedKeys(c.Default) {
		if err := checkName("default."+a, a); err != nil {
			return err
		}
		if _, err := parseSeverity(c.Default[a]); err != nil {
			return fmt.Errorf("default.%s: %v", a, err)
		}
	}
	for _, dir := range sortedKeys(c.Dirs) {
		if path.Clean(dir) != dir || path.IsAbs(dir) {
			return fmt.Errorf("dirs key %q: want a clean module-relative path", dir)
		}
		m := c.Dirs[dir]
		for _, a := range sortedKeys(m) {
			if err := checkName(fmt.Sprintf("dirs.%s.%s", dir, a), a); err != nil {
				return err
			}
			if _, err := parseSeverity(m[a]); err != nil {
				return fmt.Errorf("dirs.%s.%s: %v", dir, a, err)
			}
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// knownList renders the known analyzer names sorted, for error messages.
func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Severity resolves the severity of analyzer findings in the package
// directory relDir (slash-separated, relative to the module root; "" or
// "." for the root package). A nil config means every analyzer is
// SeverityError everywhere.
func (c *SeverityConfig) Severity(relDir, analyzer string) Severity {
	if c == nil {
		return SeverityError
	}
	relDir = path.Clean(relDir)
	best, bestLen := "", -1
	for dir, m := range c.Dirs {
		if _, ok := m[analyzer]; !ok {
			continue
		}
		if relDir == dir || strings.HasPrefix(relDir, dir+"/") {
			if len(dir) > bestLen {
				best, bestLen = dir, len(dir)
			}
		}
	}
	if bestLen >= 0 {
		s, _ := parseSeverity(c.Dirs[best][analyzer])
		return s
	}
	if v, ok := c.Default[analyzer]; ok {
		s, _ := parseSeverity(v)
		return s
	}
	return SeverityError
}
