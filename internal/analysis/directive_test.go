package analysis

import "testing"

// TestParseDirectivesMentions checks that quoted occurrences of the
// directive marker — in string literals or inside enclosing comments — are
// not parsed as live directives, while real trailing and standalone
// directives are.
func TestParseDirectivesMentions(t *testing.T) {
	src := []byte(`package p

// The grammar is //lint:allow <analyzer> <why> — prose mention, not live.
var msg = "write //lint:allow maporder why here" // string literal mention
var raw = ` + "`//lint:allow maporder backtick mention`" + `
var after = f("quoted") //lint:allow maporder directive after a closed string

func g() {
	h() //lint:allow wallclock trailing directive // want stays out of text
	//lint:allow floateq standalone directive
	k()
}
`)
	ds := ParseDirectives("p.go", src)
	if len(ds) != 3 {
		t.Fatalf("got %d directives %+v, want 3", len(ds), ds)
	}
	if ds[0].Line != 6 || ds[0].Analyzers[0] != "maporder" {
		t.Errorf("directive after closed string: got %+v", ds[0])
	}
	if ds[1].Line != 9 || ds[1].TargetLine != 9 || ds[1].Justification != "trailing directive" {
		t.Errorf("trailing directive: got %+v", ds[1])
	}
	if ds[2].Line != 10 || ds[2].TargetLine != 11 || ds[2].Analyzers[0] != "floateq" {
		t.Errorf("standalone directive: got %+v", ds[2])
	}
}

// TestParseBorrowedMentions checks the same mention rules for
// //lint:borrowed annotations.
func TestParseBorrowedMentions(t *testing.T) {
	src := []byte(`package p

// Write //lint:borrowed <analyzer> <param> <why> above the function.
var doc = "//lint:borrowed recycleuse buf quoted"

//lint:borrowed recycleuse buf caller owns the buffer
func f(buf []byte) {}
`)
	bs := ParseBorrowed("p.go", src)
	if len(bs) != 1 {
		t.Fatalf("got %d annotations %+v, want 1", len(bs), bs)
	}
	b := bs[0]
	if b.Line != 6 || b.TargetLine != 7 || b.Params[0] != "buf" || b.Note != "caller owns the buffer" {
		t.Errorf("annotation: got %+v", b)
	}
}
