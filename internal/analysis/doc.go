// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that lintscape's analyzers build
// on. The build environment vendors no external modules, so the framework
// is grown from the standard library instead: syntax from go/ast, types
// from go/types, and export data for imports resolved through
// `go list -export` (see internal/analysis/load).
//
// The API deliberately mirrors x/tools so the analyzers can migrate to the
// upstream framework verbatim once the module is allowed third-party
// dependencies: an Analyzer has a Name, a Doc and a Run function; Run
// receives a Pass with the parsed files, the type-checked package and the
// type info, and reports Diagnostics.
//
// See DESIGN.md §8 (Static invariants).
package analysis
