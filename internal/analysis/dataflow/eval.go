package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// eval computes the abstract value of a single-valued expression,
// interpreting any side effects (calls, function literals) along the way.
func (in *interp) eval(e ast.Expr) Cell {
	spec := in.spec()
	switch e := e.(type) {
	case nil:
		return Cell{}
	case *ast.Ident:
		if obj := in.obj(e); obj != nil {
			return in.env[obj]
		}
		return Cell{}
	case *ast.BasicLit:
		return Cell{}
	case *ast.ParenExpr:
		return in.eval(e.X)
	case *ast.SelectorExpr:
		// Qualified identifier (pkg.X) or method value: no tracked taint.
		if xid, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := in.info().Uses[xid].(*types.PkgName); isPkg {
				return Cell{}
			}
		}
		if sel, ok := in.info().Selections[e]; ok && sel.Kind() != types.FieldVal {
			in.eval(e.X)
			return Cell{}
		}
		// Field read: the field is part of the container's memory. In alias
		// modes a pointer-free field (b.Index, b.Range) cannot retain the
		// aliased buffer, so its taint drops.
		cell := in.eval(e.X)
		if !spec.ValueMode && pointerFree(in.typeOf(e)) {
			return Cell{Params: 0}
		}
		return cell
	case *ast.IndexExpr:
		// Generic instantiation f[T] is a function value, not an index.
		if tv, ok := in.info().Types[e.X]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return Cell{}
			}
		}
		base := in.eval(e.X)
		idx := in.eval(e.Index)
		if spec.ValueMode {
			if isMapType(in.typeOf(e.X)) {
				// A map lookup is keyed, not positional: maps impose no
				// observable order, so the container's order-taint does not
				// reach the value. An order-derived key still taints the
				// result (the lookup selects by it).
				return idx
			}
			return base.Join(idx)
		}
		if spec.ElementsAlias && !pointerFree(in.typeOf(e)) {
			return base
		}
		return Cell{} // element load is a durable copy
	case *ast.IndexListExpr:
		return Cell{}
	case *ast.SliceExpr:
		// A subslice shares the backing array in every mode.
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			in.eval(ix)
		}
		return in.eval(e.X)
	case *ast.StarExpr:
		// A deref copies the pointed-to value, but the copy still carries
		// any slice/map/pointer headers inside it, so taint propagates
		// unless the copied type is pointer-free.
		base := in.eval(e.X)
		if spec.ValueMode || !pointerFree(in.typeOf(e)) {
			return base
		}
		return Cell{}
	case *ast.UnaryExpr:
		base := in.eval(e.X)
		switch e.Op {
		case token.AND:
			return base // pointer into tainted memory stays tainted
		case token.ARROW:
			return Cell{} // channel receive: sender-side taint untracked
		default:
			if spec.ValueMode {
				return base
			}
			return Cell{}
		}
	case *ast.BinaryExpr:
		x, y := in.eval(e.X), in.eval(e.Y)
		if spec.ValueMode {
			return x.Join(y)
		}
		return Cell{} // operators build fresh values in alias modes
	case *ast.CallExpr:
		cells := in.evalCall(e)
		if len(cells) == 1 {
			return cells[0]
		}
		return Cell{}
	case *ast.CompositeLit:
		var out Cell
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out = out.Join(in.eval(kv.Value))
				continue
			}
			out = out.Join(in.eval(elt))
		}
		return out
	case *ast.FuncLit:
		in.funcLit(e, nil)
		return Cell{}
	case *ast.TypeAssertExpr:
		return in.eval(e.X)
	case *ast.KeyValueExpr:
		return in.eval(e.Value)
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StructType,
		*ast.InterfaceType, *ast.FuncType, *ast.Ellipsis:
		return Cell{}
	}
	return Cell{}
}

// evalMulti computes the abstract values of a possibly multi-valued
// expression (call, map index with comma-ok, receive, type assertion).
func (in *interp) evalMulti(e ast.Expr) []Cell {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return in.evalCall(call)
	}
	// v, ok := m[k] / <-ch / x.(T): the first value carries the taint.
	return []Cell{in.eval(e), {}}
}

// funcLit interprets a function literal inline against the shared
// environment, so closures that capture and store tainted values are seen.
// argCells, when non-nil, seed the literal's parameters (direct calls).
func (in *interp) funcLit(lit *ast.FuncLit, argCells []Cell) []Cell {
	sig, _ := in.typeOf(lit).(*types.Signature)
	nResults := 0
	if sig != nil {
		nResults = sig.Results().Len()
	}
	ctx := &retCtx{flow: make([]Cell, nResults)}
	if lit.Type.Params != nil {
		i := 0
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := in.info().Defs[name]; obj != nil {
					var cell Cell
					if i < len(argCells) {
						cell = argCells[i]
					}
					in.env[obj] = cell
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	in.rets = append(in.rets, ctx)
	in.stmt(lit.Body)
	in.rets = in.rets[:len(in.rets)-1]
	return ctx.flow
}

// evalCall interprets one call expression: conversions, builtins, unsafe
// reinterpretations, spec sources/sanitizers/sinks, and summary
// application for statically resolved in-program callees.
func (in *interp) evalCall(call *ast.CallExpr) []Cell {
	spec := in.spec()
	info := in.info()

	// Type conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		arg := in.eval(call.Args[0])
		if !spec.ValueMode && isStringByteConversion(tv.Type, in.typeOf(call.Args[0])) {
			return []Cell{{}} // string <-> []byte conversions copy
		}
		return []Cell{arg}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return in.evalBuiltin(b.Name(), call)
		}
	}

	// unsafe.String / unsafe.Slice / unsafe.Pointer reinterpretations
	// alias their argument's memory in every mode.
	if callee := StaticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "unsafe" {
		var out Cell
		for _, a := range call.Args {
			out = out.Join(in.eval(a))
		}
		return []Cell{out}
	}

	// Direct call of a function literal: interpret inline with arguments.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		argCells := make([]Cell, len(call.Args))
		for i, a := range call.Args {
			argCells[i] = in.eval(a)
		}
		return in.funcLit(lit, argCells)
	}

	ci := &CallInfo{Call: call, Callee: MatchCallee(info, call), Unit: in.fn.Unit}
	nResults := callResults(info, call)

	if spec.Sanitize != nil {
		if _, ok := spec.Sanitize(ci); ok {
			in.applySanitize(call)
			return make([]Cell, nResults)
		}
	}
	if spec.Source != nil {
		if st, ok := spec.Source(ci); ok {
			return in.applySource(call, st, nResults)
		}
	}

	// Evaluate arguments (and receiver) once, aligned to callee params.
	argExprs := alignedArgs(call)
	argCells := make([]Cell, len(argExprs))
	for i, a := range argExprs {
		argCells[i] = in.eval(a)
	}

	if spec.CallSink != nil {
		if desc, ok := spec.CallSink(ci); ok {
			for i, a := range call.Args {
				// Receiver taint is not a sink (writing *into* a tainted
				// buffer is the buffer's problem); arguments are.
				_ = i
				cell := in.eval(a)
				if cell.Tainted() {
					in.sink(call.Lparen, cell, desc)
				}
			}
			return make([]Cell, nResults)
		}
	}

	// Interprocedural step: apply the callee's summary.
	if ci.Callee != nil {
		if sum, ok := in.a.summaries[FuncID(ci.Callee)]; ok {
			return in.applySummary(ci, sum, argExprs, argCells, nResults)
		}
	}
	out := make([]Cell, nResults)
	if spec.ValueMode {
		// External calls propagate order-taint from arguments to results
		// (strings.Join, fmt.Sprintf preserve the order the inputs were
		// assembled in); only matched sanitizers launder it.
		var all Cell
		for _, c := range argCells {
			all = all.Join(c)
		}
		if all.Tainted() {
			for j := range out {
				out[j] = all
			}
		}
	}
	return out
}

// alignedArgs returns the call's argument expressions aligned to the
// callee's parameter slots: the receiver expression first for method
// calls, then the arguments.
func alignedArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return append([]ast.Expr{sel.X}, call.Args...)
	}
	return call.Args
}

// applySummary instantiates the callee's summary at this call site.
func (in *interp) applySummary(ci *CallInfo, sum *Summary, argExprs []ast.Expr, argCells []Cell, nResults int) []Cell {
	// A method call via a selector carries the receiver; a plain function
	// call does not. Align lengths with the summary's parameter count by
	// folding variadic extras onto the last slot.
	nParams := len(sum.ParamEscape)
	slot := func(i int) int {
		if i >= nParams && nParams > 0 {
			return nParams - 1 // variadic tail
		}
		return i
	}
	slotCells := make([]Cell, nParams)
	slotExprs := make([]ast.Expr, nParams)
	for i, cell := range argCells {
		s := slot(i)
		if s < 0 || s >= nParams {
			continue
		}
		slotCells[s] = slotCells[s].Join(cell)
		if slotExprs[s] == nil {
			slotExprs[s] = argExprs[i]
		}
	}

	calleeName := ci.Callee.Name()

	// Tainted arguments reaching a sink inside the callee.
	for i, desc := range sum.ParamEscape {
		if desc == "" || !slotCells[i].Tainted() {
			continue
		}
		in.sink(ci.Call.Lparen, slotCells[i], "call to "+calleeName+" ("+desc+")")
	}

	// Out-parameter flows.
	for i, po := range sum.ParamOut {
		if !po.Tainted() {
			continue
		}
		inst := Cell{Src: po.Src}
		for j := 0; j < nParams && j < 64; j++ {
			if po.Params&(1<<j) != 0 {
				inst = inst.Join(slotCells[j])
			}
		}
		if !inst.Tainted() || slotExprs[i] == nil {
			continue
		}
		in.paramOutTarget(slotExprs[i], inst, calleeName)
	}

	// Result flows.
	out := make([]Cell, nResults)
	for j := 0; j < nResults && j < len(sum.ResultFlow); j++ {
		rf := sum.ResultFlow[j]
		inst := Cell{Src: rf.Src}
		for i := 0; i < nParams && i < 64; i++ {
			if rf.Params&(1<<i) != 0 {
				inst = inst.Join(slotCells[i])
			}
		}
		out[j] = inst
	}
	return out
}

// paramOutTarget delivers a callee's out-parameter taint into the caller's
// argument target (f(&x, ...), f(m, ...)).
func (in *interp) paramOutTarget(arg ast.Expr, cell Cell, calleeName string) {
	switch t := ast.Unparen(arg).(type) {
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			if id, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if obj := in.obj(id); obj != nil {
					if v, ok := obj.(*types.Var); !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
						in.env[obj] = in.env[obj].Join(cell)
						in.fresh[obj] = false
						return
					}
				}
			}
			in.storeInto(t.X, cell)
			return
		}
	case *ast.Ident:
		if obj := in.obj(t); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				if in.spec().HeapStores {
					in.sink(arg.Pos(), cell, "call to "+calleeName+" writing into package-level "+t.Name)
				}
				return
			}
			if i := in.paramIndex(obj); i >= 0 && i < len(in.sum.ParamOut) {
				in.sum.ParamOut[i] = in.sum.ParamOut[i].Join(cell)
				return
			}
			in.env[obj] = in.env[obj].Join(cell)
			return
		}
	}
	// Pointer into arbitrary memory: a store the caller can see.
	if in.spec().HeapStores {
		in.sink(arg.Pos(), cell, "call to "+calleeName+" writing through "+exprString(arg))
	}
}

// applySource seeds taint from a matched source call.
func (in *interp) applySource(call *ast.CallExpr, st SourceTaint, nResults int) []Cell {
	out := make([]Cell, nResults)
	for j := 0; j < nResults && j < 64; j++ {
		if st.Results&(1<<j) != 0 {
			out[j] = Cell{Src: st.Reason}
		}
	}
	for i, a := range call.Args {
		if i >= 64 || st.PtrArgs&(1<<i) == 0 {
			continue
		}
		in.paramOutTarget(a, Cell{Src: st.Reason}, "source")
	}
	// Still evaluate arguments for their side effects.
	for _, a := range call.Args {
		in.eval(a)
	}
	return out
}

// applySanitize clears taint from the values a sanitizer call cleans.
func (in *interp) applySanitize(call *ast.CallExpr) {
	eff, _ := in.spec().Sanitize(&CallInfo{Call: call, Callee: StaticCallee(in.info(), call), Unit: in.fn.Unit})
	// cleanObj strong-cleans one root object. For parameters the pending
	// ParamOut record is reset too: the summary pass is one linear abstract
	// execution, so a sanitizer running after the stores means the
	// caller-visible memory is canonical at return. (A sanitizer on only
	// one branch over-clears — accepted, sanitizers are explicit.)
	cleanObj := func(obj types.Object) {
		in.env[obj] = Cell{}
		if i := in.paramIndex(obj); i >= 0 && i < len(in.sum.ParamOut) {
			in.sum.ParamOut[i] = Cell{}
		}
	}
	var clean func(e ast.Expr)
	clean = func(e ast.Expr) {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := in.obj(t); obj != nil {
				cleanObj(obj)
				in.fresh[obj] = true
			}
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				clean(t.X)
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
			// sort.Strings(g.nodes) canonicalizes memory reached through
			// the chain's root. The env has no field sensitivity, so the
			// whole root is strong-cleaned — over-broad, but sanitizers
			// are explicit canonicalization points.
			if obj, _, _ := in.storeBase(t.(ast.Expr)); obj != nil {
				if v, ok := obj.(*types.Var); !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
					cleanObj(obj)
				}
			}
		}
	}
	for i, a := range call.Args {
		if i < 64 && eff.Args&(1<<i) != 0 {
			clean(a)
		}
		if i < 64 && eff.PtrArgs&(1<<i) != 0 {
			clean(a)
		}
	}
}

// evalBuiltin interprets builtin calls.
func (in *interp) evalBuiltin(name string, call *ast.CallExpr) []Cell {
	spec := in.spec()
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return []Cell{{}}
		}
		base := in.eval(call.Args[0])
		var elems Cell
		for i, a := range call.Args[1:] {
			c := in.eval(a)
			if !spec.ValueMode && !spec.ElementsAlias &&
				call.Ellipsis.IsValid() && i == len(call.Args)-2 {
				// Element-copy mode, spread append: the elements are
				// copied out of the tainted slice, and copies are durable.
				continue
			}
			elems = elems.Join(c)
		}
		// In every mode appending a tainted value itself retains it (e.g.
		// a pooled slice header appended into a [][]Entry); in alias and
		// value modes spread elements carry taint too.
		return []Cell{base.Join(elems)}
	case "copy":
		if len(call.Args) == 2 {
			src := in.eval(call.Args[1])
			if spec.ValueMode || spec.ElementsAlias {
				if src.Tainted() {
					in.storeInto(call.Args[0], src)
				}
			} else {
				in.eval(call.Args[0])
			}
		}
		return []Cell{{}}
	case "min", "max":
		// In value mode these select among their arguments, so order-taint
		// rides through; in alias modes the result is a fresh scalar
		// aliasing nothing.
		var out Cell
		for _, a := range call.Args {
			c := in.eval(a)
			if spec.ValueMode {
				out = out.Join(c)
			}
		}
		return []Cell{out}
	case "len", "cap":
		// Length and capacity are properties of the container, not of the
		// order its contents were assembled in: len of a slice built during
		// map iteration is the same every run. Always clean.
		for _, a := range call.Args {
			in.eval(a)
		}
		return []Cell{{}}
	default:
		// len, cap, delete, clear, close, make, new, panic, print...
		for _, a := range call.Args {
			in.eval(a)
		}
		return []Cell{{}}
	}
}

// callResults returns the number of values the call produces.
func callResults(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len()
	default:
		if t == types.Typ[types.Invalid] {
			return 1
		}
		if tv.IsVoid() {
			return 0
		}
		return 1
	}
}

// isStringByteConversion reports whether a conversion between from and to
// copies its data (string <-> []byte / []rune).
func isStringByteConversion(to, from types.Type) bool {
	return isStringOrBytes(to) && isStringOrBytes(from) && !types.Identical(to.Underlying(), from.Underlying())
}

func isStringOrBytes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			k := b.Kind()
			return k == types.Byte || k == types.Rune || k == types.Uint8 || k == types.Int32
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	default:
		return "pointer argument"
	}
}
