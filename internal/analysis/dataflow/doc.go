// Package dataflow is the interprocedural taint/escape engine under the
// viewescape, recycleuse and taintorder analyzers (see DESIGN.md §8).
//
// The engine is built for one job: proving lifetime and ordering contracts
// ("this value aliases a reused buffer", "this value is in map-iteration
// order") across function boundaries, using only the standard library —
// packages are type-checked against compiler export data (go list -export),
// never re-implemented.
//
// # Model
//
// A Program indexes every function declaration in the loaded packages and
// the static call graph between them (direct calls and method calls on
// concrete receivers; interface dispatch and calls through function values
// are unresolved edges). Functions are grouped into strongly connected
// components and processed bottom-up, so a callee's summary exists before
// any caller reads it; components with recursion iterate to a fixpoint.
//
// Per function and per Spec the engine computes a Summary:
//
//   - ResultFlow[j]: the taint reaching result j — a source reason and/or a
//     bitset of parameters whose taint flows through.
//   - ParamOut[i]: the taint written through pointer-like parameter i
//     (pointers, maps, slices), so out-parameters propagate.
//   - ParamEscape[i]: non-empty when taint entering parameter i reaches a
//     sink inside the function (heap store, channel send, reporting call),
//     so a violation buried two helpers deep surfaces at the call site that
//     supplied the tainted value.
//
// The abstract value lattice is Cell: a least source reason (deterministic
// joins pick the lexicographically smallest) plus a parameter bitset.
// Within a function an AST-ordered abstract interpreter propagates Cells
// through assignments, composite literals, slicing, field selection,
// closures (analyzed inline against the shared environment), branches
// (join of both arms) and loops (two iterations, then join with the
// zero-iteration state). Locally allocated containers stay "fresh": a
// store into a fresh map or struct taints the local instead of reporting,
// and only flags if the container later escapes.
//
// # Soundness caveats
//
// The engine is a linter, not a verifier. Known approximations, documented
// here and in DESIGN.md §8: interface method calls and calls through
// function-typed values are not summarized (taint dies at the boundary);
// closures are only analyzed where the literal appears, with unknown
// arguments; branch joins mean a sanitizer inside one arm cleans the value
// for both; aliasing through non-fresh pointers is approximated by
// reporting stores whose value carries a concrete source. False negatives
// are possible by design; false positives should be rare and are
// suppressed with //lint:allow plus a justification.
package dataflow
