package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"logscape/internal/analysis"
)

// interp interprets one function body abstractly, computing its Summary
// and (in the reporting pass) emitting diagnostics at sinks.
type interp struct {
	a   *analyzer
	fn  *Func
	env map[types.Object]Cell
	// fresh marks locals currently holding locally allocated containers:
	// stores into them taint the local instead of reporting.
	fresh map[types.Object]bool
	sum   *Summary
	// rets is the return-context stack: the function's result flow at the
	// bottom, one extra frame per nested function literal.
	rets     []*retCtx
	report   bool
	reported map[string]bool
}

type retCtx struct {
	flow  []Cell
	named []*types.Var
}

// interpret runs one abstract interpretation of fn. With report unset it
// is the summary pass (run to fixpoint by Analyze); with report set it is
// the final diagnostics pass.
func (a *analyzer) interpret(fn *Func, report bool) *Summary {
	in := &interp{
		a:      a,
		fn:     fn,
		env:    make(map[types.Object]Cell),
		fresh:  make(map[types.Object]bool),
		sum:    newSummary(fn),
		report: report,
	}
	if report {
		in.reported = make(map[string]bool)
	}
	in.rets = []*retCtx{{flow: in.sum.ResultFlow, named: fn.Results}}

	borrowedBits := uint64(0)
	if a.spec.Borrowed {
		borrowedBits, _ = a.prog.BorrowedParams(fn, a.spec.Name)
	}
	for i, p := range fn.Params {
		if p.Obj == nil {
			continue
		}
		cell := Cell{}
		if i < 64 {
			cell.Params = 1 << i
		}
		if borrowedBits&(1<<i) != 0 {
			cell.Src = fmt.Sprintf("borrowed parameter %q", p.Name)
		}
		if a.spec.ParamSource != nil {
			if reason, ok := a.spec.ParamSource(fn, i, p.Obj); ok {
				cell = cell.Join(Cell{Src: reason})
			}
		}
		in.env[p.Obj] = cell
	}
	in.stmt(fn.Decl.Body)
	return in.sum
}

func (in *interp) spec() *Spec                    { return in.a.spec }
func (in *interp) info() *types.Info              { return in.fn.Unit.Info }
func (in *interp) typeOf(e ast.Expr) types.Type   { return in.info().TypeOf(e) }
func (in *interp) obj(id *ast.Ident) types.Object {
	if o := in.info().Uses[id]; o != nil {
		return o
	}
	return in.info().Defs[id]
}

// paramIndex returns the parameter slot of obj, or -1.
func (in *interp) paramIndex(obj types.Object) int {
	for i, p := range in.fn.Params {
		if p.Obj != nil && p.Obj == obj {
			return i
		}
	}
	return -1
}

// reportf emits one deduplicated diagnostic at pos (reporting pass only).
func (in *interp) reportf(pos token.Pos, src, sink string) {
	if !in.report || src == "" {
		return
	}
	msg := in.spec().Message(src, sink)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if in.reported[key] {
		return
	}
	in.reported[key] = true
	in.a.pass.Report(in.fn.Unit, analysis.Diagnostic{Pos: pos, Message: msg})
}

// escapeBits records that the parameters in cell reach the described sink,
// so callers passing tainted values here inherit the finding.
func (in *interp) escapeBits(cell Cell, desc string) {
	for i := 0; i < len(in.sum.ParamEscape) && i < 64; i++ {
		if cell.Params&(1<<i) != 0 && in.sum.ParamEscape[i] == "" {
			in.sum.ParamEscape[i] = desc
		}
	}
}

// sink handles a tainted value arriving at a sink: report (if the taint
// has a concrete source) and record parameter escapes.
func (in *interp) sink(pos token.Pos, cell Cell, desc string) {
	if !cell.Tainted() {
		return
	}
	in.reportf(pos, cell.Src, desc)
	in.escapeBits(cell, desc)
}

// ---- environment snapshots for branch joins ----

func (in *interp) snapshot() (map[types.Object]Cell, map[types.Object]bool) {
	env := make(map[types.Object]Cell, len(in.env))
	for k, v := range in.env {
		env[k] = v
	}
	fresh := make(map[types.Object]bool, len(in.fresh))
	for k, v := range in.fresh {
		fresh[k] = v
	}
	return env, fresh
}

func (in *interp) restore(env map[types.Object]Cell, fresh map[types.Object]bool) {
	in.env, in.fresh = env, fresh
}

// joinWith merges another environment into the current one (least upper
// bound per variable; fresh only survives if fresh on both paths).
func (in *interp) joinWith(env map[types.Object]Cell, fresh map[types.Object]bool) {
	for k, v := range env {
		in.env[k] = in.env[k].Join(v)
	}
	for k := range in.fresh {
		if !fresh[k] {
			delete(in.fresh, k)
		}
	}
}

// ---- statements ----

func (in *interp) stmts(list []ast.Stmt) {
	for _, s := range list {
		in.stmt(s)
	}
}

func (in *interp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		in.stmts(s.List)
	case *ast.ExprStmt:
		in.eval(s.X)
	case *ast.AssignStmt:
		in.assignStmt(s)
	case *ast.DeclStmt:
		in.declStmt(s)
	case *ast.ReturnStmt:
		in.returnStmt(s)
	case *ast.IfStmt:
		in.ifStmt(s)
	case *ast.ForStmt:
		in.stmt(s.Init)
		if s.Cond != nil {
			in.eval(s.Cond)
		}
		in.loop(func() { in.stmt(s.Body); in.stmt(s.Post) })
	case *ast.RangeStmt:
		in.rangeStmt(s)
	case *ast.SwitchStmt:
		in.stmt(s.Init)
		if s.Tag != nil {
			in.eval(s.Tag)
		}
		in.branches(s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		in.stmt(s.Init)
		in.typeSwitch(s)
	case *ast.SelectStmt:
		in.branches(s.Body.List, nil)
	case *ast.SendStmt:
		in.eval(s.Chan)
		cell := in.eval(s.Value)
		if in.spec().ChanSend {
			in.sink(s.Arrow, cell, "channel send")
		}
	case *ast.GoStmt:
		in.evalCall(s.Call)
	case *ast.DeferStmt:
		in.evalCall(s.Call)
	case *ast.LabeledStmt:
		in.stmt(s.Stmt)
	case *ast.IncDecStmt:
		in.eval(s.X)
	case *ast.CommClause:
		in.stmt(s.Comm)
		in.stmts(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			in.eval(e)
		}
		in.stmts(s.Body)
	}
}

// loop runs body twice (propagating loop-carried taint) and then joins the
// zero-iteration state back in.
func (in *interp) loop(body func()) {
	preEnv, preFresh := in.snapshot()
	// Iterate the body until the environment stabilises so taint carried
	// across iterations through a chain of assignments propagates fully.
	// Strong updates make single runs non-monotone, so a cap backstops
	// oscillation.
	const maxIter = 16
	for i := 0; i < maxIter; i++ {
		before := cloneEnv(in.env)
		body()
		if envEqual(before, in.env) {
			break
		}
	}
	in.joinWith(preEnv, preFresh)
}

func envEqual(a, b map[types.Object]Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// branches interprets each clause from the same pre-state and joins the
// results, modelling that exactly one (or none) executes.
func (in *interp) branches(clauses []ast.Stmt, extra func(ast.Stmt)) {
	baseEnv, baseFresh := in.snapshot() // pre-state, shared read-only
	accEnv, accFresh := in.env, in.fresh
	for _, c := range clauses {
		in.restore(cloneEnv(baseEnv), cloneFresh(baseFresh))
		if extra != nil {
			extra(c)
		}
		in.stmt(c)
		outEnv, outFresh := in.env, in.fresh
		in.restore(accEnv, accFresh)
		in.joinWith(outEnv, outFresh)
		accEnv, accFresh = in.env, in.fresh
	}
	in.restore(accEnv, accFresh)
}

func cloneEnv(m map[types.Object]Cell) map[types.Object]Cell {
	out := make(map[types.Object]Cell, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneFresh(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (in *interp) ifStmt(s *ast.IfStmt) {
	in.stmt(s.Init)
	in.eval(s.Cond)
	baseEnv, baseFresh := in.snapshot()
	in.stmt(s.Body)
	thenEnv, thenFresh := in.snapshot()
	in.restore(baseEnv, baseFresh)
	if s.Else != nil {
		in.stmt(s.Else)
	}
	in.joinWith(thenEnv, thenFresh)
}

func (in *interp) typeSwitch(s *ast.TypeSwitchStmt) {
	// The asserted expression's taint flows into each clause's implicit
	// binding.
	var cell Cell
	switch assign := s.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(assign.X).(*ast.TypeAssertExpr); ok {
			cell = in.eval(ta.X)
		}
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := ast.Unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); ok {
				cell = in.eval(ta.X)
			}
		}
	}
	in.branches(s.Body.List, func(c ast.Stmt) {
		if obj := in.info().Implicits[c]; obj != nil {
			in.env[obj] = cell
		}
	})
}

func (in *interp) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := in.obj(name)
			if obj == nil || name.Name == "_" {
				continue
			}
			cell := Cell{}
			freshVal := true // zero values are locally owned
			if i < len(vs.Values) {
				cell = in.eval(vs.Values[i])
				freshVal = in.freshExpr(vs.Values[i], cell)
			} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
				cells := in.evalMulti(vs.Values[0])
				if i < len(cells) {
					cell = cells[i]
				}
				freshVal = !cell.Tainted()
			}
			in.env[obj] = cell
			in.fresh[obj] = freshVal
		}
	}
}

func (in *interp) returnStmt(s *ast.ReturnStmt) {
	ctx := in.rets[len(in.rets)-1]
	switch {
	case len(s.Results) == 0:
		for j, v := range ctx.named {
			if j < len(ctx.flow) && v != nil {
				ctx.flow[j] = ctx.flow[j].Join(in.env[v])
			}
		}
	case len(s.Results) == len(ctx.flow):
		for j, r := range s.Results {
			ctx.flow[j] = ctx.flow[j].Join(in.eval(r))
		}
	case len(s.Results) == 1:
		cells := in.evalMulti(s.Results[0])
		for j := range ctx.flow {
			if j < len(cells) {
				ctx.flow[j] = ctx.flow[j].Join(cells[j])
			}
		}
	}
}

func (in *interp) rangeStmt(s *ast.RangeStmt) {
	cellX := in.eval(s.X)
	spec := in.spec()

	var elem Cell
	if spec.ElementsAlias || spec.ValueMode {
		elem = cellX
	}
	if spec.RangeSource != nil {
		if reason, ok := spec.RangeSource(in.fn.Unit, s); ok {
			elem = elem.Join(Cell{Src: reason})
		}
	}
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			if obj := in.obj(id); obj != nil {
				in.env[obj] = elem
				in.fresh[obj] = false
				return
			}
		}
		in.storeInto(e, elem)
	}
	in.loop(func() {
		bind(s.Key)
		bind(s.Value)
		in.stmt(s.Body)
	})
}

func (in *interp) assignStmt(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			cells := make([]Cell, len(s.Rhs))
			freshes := make([]bool, len(s.Rhs))
			for i, r := range s.Rhs {
				cells[i] = in.eval(r)
				freshes[i] = in.freshExpr(r, cells[i])
			}
			for i, l := range s.Lhs {
				in.assign(l, cells[i], freshes[i])
			}
			return
		}
		// x, y := f() / m[k] / <-ch / v.(T)
		if len(s.Rhs) == 1 {
			cells := in.evalMulti(s.Rhs[0])
			for i, l := range s.Lhs {
				var cell Cell
				if i < len(cells) {
					cell = cells[i]
				}
				in.assign(l, cell, !cell.Tainted())
			}
		}
	default:
		// Compound assignment: x op= y.
		lhs := s.Lhs[0]
		old := in.eval(lhs)
		rhs := in.eval(s.Rhs[0])
		cell := old.Join(rhs)
		if !in.spec().ValueMode {
			// Alias modes: operators produce fresh values.
			cell = Cell{}
		} else if exactCommutativeFold(s.Tok, in.typeOf(lhs)) {
			// Integer +=, *=, |=, &=, ^= are exact and commutative, so an
			// accumulation over a complete iteration yields the same value
			// in any order: the fold canonicalizes the taint away. (A fold
			// cut short by break stays order-dependent and is missed —
			// documented false negative.)
			cell = old
		}
		if as := in.spec().AccumSink; as != nil && rhs.Tainted() && as(s.Tok, in.typeOf(lhs)) {
			in.sink(s.TokPos, rhs, fmt.Sprintf("order-sensitive accumulation (%s)", s.Tok))
		}
		in.assign(lhs, cell, false)
	}
}

// assign writes cell to the lvalue target. freshVal reports whether the
// assigned value is a locally allocated container.
func (in *interp) assign(target ast.Expr, cell Cell, freshVal bool) {
	if id, ok := ast.Unparen(target).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := in.obj(id)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Assignment to a package-level variable.
			if in.spec().HeapStores {
				in.sink(id.Pos(), cell, fmt.Sprintf("assignment to package-level variable %s", id.Name))
			}
			return
		}
		in.env[obj] = cell // strong update
		in.fresh[obj] = freshVal
		return
	}
	in.storeInto(target, cell)
}

// storeInto models a write into the memory reachable through target
// (x.f = v, m[k] = v, *p = v, sl[i] = v and chains thereof).
func (in *interp) storeInto(target ast.Expr, cell Cell) {
	baseObj, crossed, viaMap := in.storeBase(target)
	if viaMap && in.spec().ValueMode {
		// Order-taint mode: a store through a map index is keyed, not
		// positional — the map's content does not depend on the order the
		// stores happened in, and iterating the map re-introduces the
		// taint at the range statement. The container stays clean.
		return
	}
	switch {
	case baseObj == nil:
		// Store through an expression with no variable root (call result,
		// etc.): treat as a heap store.
		if crossed && in.spec().HeapStores {
			in.sink(target.Pos(), cell, "store into heap-reachable memory")
		}
	case !crossed:
		// Pure value-field chain: mutates the local copy only.
		in.env[baseObj] = in.env[baseObj].Join(cell)
	default:
		if i := in.paramIndex(baseObj); i >= 0 {
			if in.spec().ParamStores {
				// Contract modes (recycleuse): retaining tainted data in
				// caller-visible memory is the violation itself.
				in.sink(target.Pos(), cell, fmt.Sprintf("store through parameter %s", baseObj.Name()))
				return
			}
			// Caller-visible memory: record the out-flow; the caller
			// decides whether its target was durable.
			if i < len(in.sum.ParamOut) {
				in.sum.ParamOut[i] = in.sum.ParamOut[i].Join(cell)
			}
			return
		}
		if v, ok := baseObj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			if in.spec().HeapStores {
				in.sink(target.Pos(), cell, fmt.Sprintf("store into package-level %s", v.Name()))
			}
			return
		}
		if in.fresh[baseObj] {
			// Locally allocated container absorbs the taint; it only
			// flags if the container itself escapes later.
			in.env[baseObj] = in.env[baseObj].Join(cell)
			return
		}
		in.env[baseObj] = in.env[baseObj].Join(cell)
		if in.spec().HeapStores {
			in.sink(target.Pos(), cell, fmt.Sprintf("store into heap-reachable %s", baseObj.Name()))
		}
	}
}

// storeBase resolves the root variable of an lvalue chain, whether the
// chain crosses into shared memory (pointer deref, slice element, map),
// and whether it passes through a map index.
func (in *interp) storeBase(target ast.Expr) (types.Object, bool, bool) {
	crossed, viaMap := false, false
	e := target
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			crossed = true
			e = t.X
		case *ast.IndexExpr:
			if typ := in.typeOf(t.X); typ != nil {
				switch typ.Underlying().(type) {
				case *types.Array:
					// Array value element: still the local copy.
				case *types.Map:
					crossed = true
					viaMap = true
				default:
					crossed = true // slice, pointer-to-array
				}
			} else {
				crossed = true
			}
			e = t.X
		case *ast.SelectorExpr:
			if xid, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if _, isPkg := in.info().Uses[xid].(*types.PkgName); isPkg {
					return in.obj(t.Sel), true, viaMap
				}
			}
			if typ := in.typeOf(t.X); typ != nil {
				if _, isPtr := typ.Underlying().(*types.Pointer); isPtr {
					crossed = true
				}
			}
			e = t.X
		case *ast.Ident:
			return in.obj(t), crossed, viaMap
		default:
			return nil, crossed, viaMap
		}
	}
}

// freshExpr reports whether e evaluates to locally allocated memory.
func (in *interp) freshExpr(e ast.Expr, cell Cell) bool {
	if cell.Tainted() {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return in.freshExpr(e.X, cell)
		}
	case *ast.Ident:
		if obj := in.obj(e); obj != nil {
			return in.fresh[obj]
		}
	case *ast.SliceExpr:
		return in.freshExpr(e.X, cell)
	case *ast.CallExpr:
		// make/new, append chains rooted in fresh slices, and untainted
		// constructor results all count as locally owned: treating them
		// as shared heap would flag every store into a just-built
		// container. A container that later escapes still flags there.
		return true
	case *ast.BasicLit:
		return true
	}
	return false
}
