package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"logscape/internal/analysis"
)

// Cell is the abstract value lattice: which taint a value may carry.
// The zero Cell is "untainted".
type Cell struct {
	// Src is the reason the value is (transitively) derived from a taint
	// source; "" when it is not. Joins keep the lexicographically smallest
	// reason so the analysis is deterministic.
	Src string
	// Params is the bitset of the enclosing function's parameters whose
	// taint may reach this value (parameter i = bit i, receiver first;
	// parameters beyond 63 are untracked).
	Params uint64
}

// Tainted reports whether the cell carries any taint at all.
func (c Cell) Tainted() bool { return c.Src != "" || c.Params != 0 }

// Join returns the least upper bound of c and d.
func (c Cell) Join(d Cell) Cell {
	out := Cell{Src: c.Src, Params: c.Params | d.Params}
	if out.Src == "" || (d.Src != "" && d.Src < out.Src) {
		out.Src = d.Src
	}
	return out
}

// Summary is the per-function dataflow summary of one Spec.
type Summary struct {
	// ResultFlow[j] is the taint reaching result j.
	ResultFlow []Cell
	// ParamOut[i] is the taint written through pointer-like parameter i
	// (pointer, map, slice, channel), visible to the caller after return.
	ParamOut []Cell
	// ParamEscape[i] describes the sink that taint entering parameter i
	// reaches inside the function ("" when none).
	ParamEscape []string
}

func newSummary(fn *Func) *Summary {
	return &Summary{
		ResultFlow:  make([]Cell, fn.Sig.Results().Len()),
		ParamOut:    make([]Cell, len(fn.Params)),
		ParamEscape: make([]string, len(fn.Params)),
	}
}

func (s *Summary) equal(t *Summary) bool {
	if len(s.ResultFlow) != len(t.ResultFlow) || len(s.ParamOut) != len(t.ParamOut) || len(s.ParamEscape) != len(t.ParamEscape) {
		return false
	}
	for i := range s.ResultFlow {
		if s.ResultFlow[i] != t.ResultFlow[i] {
			return false
		}
	}
	for i := range s.ParamOut {
		if s.ParamOut[i] != t.ParamOut[i] {
			return false
		}
	}
	for i := range s.ParamEscape {
		if s.ParamEscape[i] != t.ParamEscape[i] {
			return false
		}
	}
	return true
}

// Facts renders the summary as stable human-readable fact strings, the
// form analysistest matches // wantfact expectations against.
func (s *Summary) Facts() []string {
	var out []string
	for j, c := range s.ResultFlow {
		if c.Src != "" {
			out = append(out, fmt.Sprintf("result#%d tainted: %s", j, c.Src))
		}
		for i := 0; i < 64; i++ {
			if c.Params&(1<<i) != 0 {
				out = append(out, fmt.Sprintf("result#%d from param#%d", j, i))
			}
		}
	}
	for i, c := range s.ParamOut {
		if c.Src != "" {
			out = append(out, fmt.Sprintf("*param#%d tainted: %s", i, c.Src))
		}
		for j := 0; j < 64; j++ {
			if c.Params&(1<<j) != 0 {
				out = append(out, fmt.Sprintf("*param#%d from param#%d", i, j))
			}
		}
	}
	for i, desc := range s.ParamEscape {
		if desc != "" {
			out = append(out, fmt.Sprintf("param#%d escapes: %s", i, desc))
		}
	}
	sort.Strings(out)
	return out
}

// CallInfo hands a call site to the Spec's matchers.
type CallInfo struct {
	Call *ast.CallExpr
	// Callee is the statically resolved target; nil for calls through
	// function values. Interface methods resolve to the interface method
	// object (useful for name-based sink matching) even though the engine
	// has no summary for them.
	Callee *types.Func
	Unit   *analysis.ProgramUnit
}

// SourceTaint describes which outputs of a matched source call become
// tainted.
type SourceTaint struct {
	// Reason labels the taint (it becomes Cell.Src and appears in
	// diagnostics).
	Reason string
	// Results is the bitset of tainted call results.
	Results uint64
	// PtrArgs is the bitset of arguments whose pointed-to value becomes
	// tainted (for out-parameter sources like ParseEntryBytesInto).
	PtrArgs uint64
}

// SanitizeEffect describes which values a matched sanitizer call cleans.
type SanitizeEffect struct {
	// Results is the bitset of call results that are clean copies.
	Results uint64
	// Args is the bitset of arguments cleaned in place (sort.Strings).
	Args uint64
	// PtrArgs is the bitset of arguments whose pointed-to value is
	// cleanly (re)initialized.
	PtrArgs uint64
}

// Spec instantiates the engine for one analyzer: where taint is born, how
// it propagates, what kills it, and where it must not arrive.
type Spec struct {
	// Name is the analyzer name (for //lint:borrowed matching).
	Name string

	// ElementsAlias selects alias-style element semantics: indexing and
	// dereferencing a tainted container yields a tainted value (the
	// elements alias the tainted memory, as with view-mode entries).
	// When false (recycleuse), an element load is a durable copy.
	ElementsAlias bool
	// ValueMode selects order-taint semantics (taintorder): taint rides
	// through operators, conversions and copies, because the property
	// ("derived from map-iteration order") survives copying. When false,
	// copy operations (string conversion, concatenation) produce fresh
	// memory and clear the taint.
	ValueMode bool
	// HeapStores makes stores into non-fresh heap memory (maps, fields
	// and elements reached through pointers, package-level variables) and
	// assignments to package-level variables sinks.
	HeapStores bool
	// ChanSend makes sending a tainted value on a channel a sink.
	ChanSend bool
	// ParamStores makes stores through pointer-like parameters (including
	// the receiver) sinks instead of ParamOut flows: for contracts like
	// bucket recycling, a method retaining contract-tainted data in its
	// own receiver state is itself the violation — there is no caller
	// able to judge durability.
	ParamStores bool
	// Borrowed honors //lint:borrowed annotations naming this analyzer.
	Borrowed bool

	// Source matches taint-source calls.
	Source func(ci *CallInfo) (SourceTaint, bool)
	// RangeSource matches range statements whose iteration variables are
	// taint sources (map iteration for taintorder); it returns the taint
	// reason.
	RangeSource func(unit *analysis.ProgramUnit, rng *ast.RangeStmt) (string, bool)
	// ParamSource marks function parameters that are tainted by contract
	// (e.g. Bucket parameters under RecycleBuckets); it returns the taint
	// reason.
	ParamSource func(fn *Func, i int, v *types.Var) (string, bool)
	// Sanitize matches calls that launder taint (strings.Clone, intern-
	// mode parses, sorts).
	Sanitize func(ci *CallInfo) (SanitizeEffect, bool)
	// CallSink matches calls that must not receive tainted arguments
	// (writers for taintorder); it returns the sink description.
	CallSink func(ci *CallInfo) (string, bool)
	// AccumSink reports whether a compound assignment with op on a value
	// of type t is an order-sensitive accumulation sink (taintorder).
	AccumSink func(op token.Token, t types.Type) bool

	// Message renders a diagnostic from the taint reason and the sink
	// description.
	Message func(src, sink string) string
}

// Analyze runs the spec over the program: bottom-up summaries with a
// fixpoint per SCC, then a reporting pass per function, then fact export
// when the pass requests it.
func Analyze(spec *Spec, prog *Program, pass *analysis.ProgramPass) {
	a := &analyzer{spec: spec, prog: prog, pass: pass, summaries: make(map[string]*Summary)}

	// maxRounds bounds a fixpoint that fails to converge (it cannot, the
	// lattice being finite, but an engine bug must not hang the driver).
	const maxRounds = 64
	for _, scc := range prog.SCCs {
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, id := range scc {
				sum := a.interpret(prog.Funcs[id], false)
				if old, ok := a.summaries[id]; !ok || !old.equal(sum) {
					a.summaries[id] = sum
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	ids := make([]string, 0, len(prog.Funcs))
	for id := range prog.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a.interpret(prog.Funcs[id], true)
	}

	if pass.ExportFact != nil {
		for _, id := range ids {
			fn := prog.Funcs[id]
			for _, fact := range a.summaries[id].Facts() {
				pass.ExportFact(fn.Decl.Name.Pos(), fact)
			}
		}
	}
}

// analyzer is the per-Spec analysis state shared by all interpretations.
type analyzer struct {
	spec      *Spec
	prog      *Program
	pass      *analysis.ProgramPass
	summaries map[string]*Summary
}
