package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MatchCallee resolves the callee for Spec matchers: like StaticCallee but
// also returning interface methods, so name-based sink matching sees
// io.Writer.Write and friends. The engine never has summaries for
// interface methods, so the permissive resolution cannot misroute the
// interprocedural step.
func MatchCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if fn := StaticCallee(info, call); fn != nil {
		return fn
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
	}
	return nil
}

// CalleeIs reports whether the call's statically resolved callee is the
// package-level function or method name of the package at pkgPath.
func (ci *CallInfo) CalleeIs(pkgPath, name string) bool {
	fn := ci.Callee
	if fn == nil || fn.Name() != name {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// CalleeNamed reports whether the callee has the given bare name, whatever
// package or interface it belongs to.
func (ci *CallInfo) CalleeNamed(name string) bool {
	return ci.Callee != nil && ci.Callee.Name() == name
}

// IsNil reports whether e is a statically nil expression (the untyped nil
// literal, possibly parenthesised or converted).
func (ci *CallInfo) IsNil(e ast.Expr) bool {
	tv, ok := ci.Unit.Info.Types[e]
	return ok && tv.IsNil()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// exactCommutativeFold reports whether the compound-assignment token op on
// a target of type t is an exact, commutative accumulation (integer +=,
// *=, |=, &=, ^=): any complete fold with it is order-independent.
func exactCommutativeFold(op token.Token, t types.Type) bool {
	switch op {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN,
		token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pointerFree reports whether values of type t cannot hold references into
// other memory: basic non-string types, and arrays/structs thereof. Such
// values can be stored anywhere without retaining aliased buffers, so
// alias-mode analyses drop their taint. Value-field recursion cannot cycle
// (a struct cannot contain itself by value), so no visited set is needed.
func pointerFree(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString == 0 && u.Kind() != types.UnsafePointer
	case *types.Array:
		return pointerFree(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !pointerFree(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}
