package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"logscape/internal/analysis"
)

// Func is one function declaration with a body, indexed by its stable ID.
type Func struct {
	// ID is the types.Func full name (package path qualified), the key
	// that bridges the separate type-check universes of each package.
	ID   string
	Decl *ast.FuncDecl
	Obj  *types.Func
	Sig  *types.Signature
	Unit *analysis.ProgramUnit
	// Params holds the receiver (if any) followed by the declared
	// parameters; entries with a nil Obj are unnamed (or _).
	Params []Param
	// Results holds the named result objects (nil entries when unnamed),
	// for naked returns.
	Results []*types.Var
	// callees are the IDs of statically resolved callees, sorted.
	callees []string
}

// Param is one parameter slot of a Func.
type Param struct {
	Obj  *types.Var
	Name string
}

// Program is the indexed whole-program view a Spec is analyzed against.
type Program struct {
	Fset  *token.FileSet
	Units []*analysis.ProgramUnit
	// Funcs maps Func.ID to the function. Only declarations with bodies
	// appear; external and export-data-only functions are absent.
	Funcs map[string]*Func
	// SCCs are the strongly connected components of the call graph in
	// bottom-up (callee-before-caller) order; each component is sorted.
	SCCs [][]string
	// borrowed indexes //lint:borrowed annotations by file name.
	borrowed map[string][]analysis.Borrowed
}

// BuildProgram indexes the functions and static call graph of the units.
func BuildProgram(fset *token.FileSet, units []*analysis.ProgramUnit) *Program {
	p := &Program{
		Fset:     fset,
		Units:    units,
		Funcs:    make(map[string]*Func),
		borrowed: make(map[string][]analysis.Borrowed),
	}
	for _, u := range units {
		for name, src := range u.Sources {
			if bs := analysis.ParseBorrowed(name, src); len(bs) > 0 {
				p.borrowed[name] = bs
			}
		}
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{
					ID:   FuncID(obj),
					Decl: fd,
					Obj:  obj,
					Sig:  obj.Type().(*types.Signature),
					Unit: u,
				}
				fn.Params = declParams(fd, u.Info)
				fn.Results = declResults(fd, u.Info)
				p.Funcs[fn.ID] = fn
			}
		}
	}
	for _, fn := range p.Funcs {
		fn.callees = p.collectCallees(fn)
	}
	p.SCCs = p.tarjan()
	return p
}

// FuncID returns the stable cross-universe identifier of fn: the full name
// of its generic origin (e.g. "pkg/path.Name" or "(*pkg/path.T).Name").
func FuncID(fn *types.Func) string {
	return fn.Origin().FullName()
}

func declParams(fd *ast.FuncDecl, info *types.Info) []Param {
	var out []Param
	addField := func(field *ast.Field) {
		if len(field.Names) == 0 {
			out = append(out, Param{})
			return
		}
		for _, n := range field.Names {
			v, _ := info.Defs[n].(*types.Var)
			out = append(out, Param{Obj: v, Name: n.Name})
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			addField(field)
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			addField(field)
		}
	}
	return out
}

func declResults(fd *ast.FuncDecl, info *types.Info) []*types.Var {
	if fd.Type.Results == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range field.Names {
			v, _ := info.Defs[n].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// StaticCallee resolves the called function of a call expression to a
// concrete *types.Func, or nil when the call is a conversion, a builtin,
// an interface method, or a call through a function value.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil
			}
			return fn
		}
		// Package-qualified function: pkg.F.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		// Generic instantiation f[T](...).
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

func (p *Program) collectCallees(fn *Func) []string {
	seen := make(map[string]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := StaticCallee(fn.Unit.Info, call); callee != nil {
			id := FuncID(callee)
			if _, inProgram := p.Funcs[id]; inProgram {
				seen[id] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// tarjan computes the SCCs of the call graph. Tarjan's algorithm emits a
// component only after all components it calls into, so the output order
// is already bottom-up. Roots are visited in sorted ID order so the
// decomposition (and with it every downstream iteration) is deterministic.
func (p *Program) tarjan() [][]string {
	ids := make([]string, 0, len(p.Funcs))
	for id := range p.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[string]*nodeState, len(ids))
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		st := &nodeState{index: next, lowlink: next}
		next++
		states[v] = st
		stack = append(stack, v)
		st.onStack = true

		for _, w := range p.Funcs[v].callees {
			ws, seen := states[w]
			if !seen {
				strongconnect(w)
				if l := states[w].lowlink; l < st.lowlink {
					st.lowlink = l
				}
			} else if ws.onStack {
				if ws.index < st.lowlink {
					st.lowlink = ws.index
				}
			}
		}

		if st.lowlink == st.index {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, id := range ids {
		if _, seen := states[id]; !seen {
			strongconnect(id)
		}
	}
	return sccs
}

// BorrowedParams returns the bitset of fn's parameters annotated
// //lint:borrowed for the named analyzer, plus the parameter names.
func (p *Program) BorrowedParams(fn *Func, analyzer string) (uint64, []string) {
	pos := p.Fset.Position(fn.Decl.Pos())
	var bits uint64
	var names []string
	for _, b := range p.borrowed[pos.Filename] {
		if b.TargetLine != pos.Line || !b.Matches(analyzer) {
			continue
		}
		for _, name := range b.Params {
			for i, param := range fn.Params {
				if param.Name == name && i < 64 {
					bits |= 1 << i
					names = append(names, name)
				}
			}
		}
	}
	return bits, names
}
