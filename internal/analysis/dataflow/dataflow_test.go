package dataflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"logscape/internal/analysis"
	"logscape/internal/analysis/load"
)

// compile type-checks one import-free source file into a ProgramUnit.
func compile(t *testing.T, src string) (*token.FileSet, *analysis.ProgramUnit) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &analysis.ProgramUnit{
		Pkg: pkg, Files: []*ast.File{f}, Info: info, RelDir: ".",
		Sources: map[string][]byte{"a.go": []byte(src)},
	}
}

// testSpec: calls to functions named "source" taint their result, "clean"
// sanitizes its result, "emit" is a call sink; heap stores sink too.
func testSpec() *Spec {
	named := func(ci *CallInfo, name string) bool {
		return ci.Callee != nil && ci.Callee.Name() == name
	}
	return &Spec{
		Name:          "testtaint",
		ElementsAlias: true,
		HeapStores:    true,
		ChanSend:      true,
		Borrowed:      true,
		Source: func(ci *CallInfo) (SourceTaint, bool) {
			if named(ci, "source") {
				return SourceTaint{Reason: "test source", Results: 1}, true
			}
			return SourceTaint{}, false
		},
		Sanitize: func(ci *CallInfo) (SanitizeEffect, bool) {
			if named(ci, "clean") {
				return SanitizeEffect{Results: 1}, true
			}
			return SanitizeEffect{}, false
		},
		CallSink: func(ci *CallInfo) (string, bool) {
			if named(ci, "emit") {
				return "emit call", true
			}
			return "", false
		},
		Message: func(src, sink string) string {
			return fmt.Sprintf("%s reaches %s", src, sink)
		},
	}
}

// analyzeSrc runs the test spec over src, returning diagnostics and facts.
func analyzeSrc(t *testing.T, src string) (diags []string, facts map[string][]string) {
	t.Helper()
	fset, unit := compile(t, src)
	prog := BuildProgram(fset, []*analysis.ProgramUnit{unit})
	facts = make(map[string][]string)
	pass := &analysis.ProgramPass{
		Fset:  fset,
		Units: []*analysis.ProgramUnit{unit},
		Report: func(u *analysis.ProgramUnit, d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			diags = append(diags, fmt.Sprintf("%d: %s", pos.Line, d.Message))
		},
		ExportFact: func(pos token.Pos, fact string) {
			name := "?"
			for id, fn := range prog.Funcs {
				if fn.Decl.Name.Pos() == pos {
					name = id
				}
			}
			facts[name] = append(facts[name], fact)
		},
	}
	Analyze(testSpec(), prog, pass)
	return diags, facts
}

const preamble = `package a

var global map[string]string

func source() string { return "s" }
func clean(s string) string { return s }
func emit(s string) {}
`

func wantDiag(t *testing.T, diags []string, frag string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d, frag) {
			return
		}
	}
	t.Errorf("no diagnostic containing %q; got %v", frag, diags)
}

func wantNoDiags(t *testing.T, diags []string) {
	t.Helper()
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics, got %v", diags)
	}
}

func TestDirectFlow(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f() {
	s := source()
	emit(s)
}
`)
	wantDiag(t, diags, "test source reaches emit call")
}

func TestSanitizerKillsTaint(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f() {
	s := source()
	s = clean(s)
	emit(s)
}
`)
	wantNoDiags(t, diags)
}

func TestHeapStoreSink(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f() {
	global["k"] = source()
}
`)
	wantDiag(t, diags, "store into package-level global")
}

func TestFreshContainerAbsorbsThenEscapes(t *testing.T) {
	// Storing into a local map is fine until the map is stored globally.
	diags, _ := analyzeSrc(t, preamble+`
var sink map[string]map[string]string

func ok() {
	m := map[string]string{}
	m["k"] = source()
	_ = m
}

func bad() {
	m := map[string]string{}
	m["k"] = source()
	sink["x"] = m
}
`)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %v", diags)
	}
	wantDiag(t, diags, "store into package-level sink")
}

func TestInterproceduralResultFlow(t *testing.T) {
	// Taint returned by a helper flags at the caller's sink.
	diags, facts := analyzeSrc(t, preamble+`
func helper() string { return source() }

func f() {
	emit(helper())
}
`)
	wantDiag(t, diags, "test source reaches emit call")
	got := strings.Join(facts["a.helper"], "; ")
	if !strings.Contains(got, "result#0 tainted: test source") {
		t.Errorf("helper facts = %q, want result#0 tainted", got)
	}
}

func TestInterproceduralParamEscape(t *testing.T) {
	// A helper that stores its parameter flags at the call site feeding
	// it tainted data — two levels deep.
	diags, facts := analyzeSrc(t, preamble+`
func store(v string) { global["k"] = v }
func indirect(v string) { store(v) }

func f() {
	indirect(source())
}
`)
	wantDiag(t, diags, "call to indirect")
	got := strings.Join(facts["a.indirect"], "; ")
	if !strings.Contains(got, "param#0 escapes") {
		t.Errorf("indirect facts = %q, want param#0 escapes", got)
	}
}

func TestParamOutFlow(t *testing.T) {
	diags, facts := analyzeSrc(t, preamble+`
func fill(dst *string) { *dst = source() }

func f() {
	var s string
	fill(&s)
	emit(s)
}
`)
	wantDiag(t, diags, "test source reaches emit call")
	got := strings.Join(facts["a.fill"], "; ")
	if !strings.Contains(got, "*param#0 tainted: test source") {
		t.Errorf("fill facts = %q, want *param#0 tainted", got)
	}
}

func TestRecursionFixpoint(t *testing.T) {
	// Mutually recursive helpers still converge and propagate.
	diags, _ := analyzeSrc(t, preamble+`
func ping(n int) string {
	if n == 0 {
		return source()
	}
	return pong(n - 1)
}
func pong(n int) string { return ping(n) }

func f() {
	emit(pong(3))
}
`)
	wantDiag(t, diags, "test source reaches emit call")
}

func TestBranchJoin(t *testing.T) {
	// Taint assigned in one branch survives the join.
	diags, _ := analyzeSrc(t, preamble+`
func f(cond bool) {
	s := "ok"
	if cond {
		s = source()
	}
	emit(s)
}
`)
	wantDiag(t, diags, "test source reaches emit call")
}

func TestLoopCarriedTaint(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f() {
	s := "ok"
	t := "ok"
	for i := 0; i < 3; i++ {
		emit(t) // t is tainted from the previous iteration
		t = s
		s = source()
	}
}
`)
	wantDiag(t, diags, "test source reaches emit call")
}

func TestClosureCaptureStore(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f() {
	s := source()
	fn := func() {
		global["k"] = s
	}
	fn()
}
`)
	wantDiag(t, diags, "store into package-level global")
}

func TestChanSendSink(t *testing.T) {
	diags, _ := analyzeSrc(t, preamble+`
func f(ch chan string) {
	ch <- source()
}
`)
	wantDiag(t, diags, "channel send")
}

func TestBorrowedParam(t *testing.T) {
	// The directive marker is split so the repo-wide allowaudit scan does
	// not read this embedded fixture as a live annotation of this file.
	diags, facts := analyzeSrc(t, preamble+"//lint:"+`borrowed testtaint buf caller owns the bytes
func g(buf string) {
	global["k"] = buf
}

func ok(buf string) {
	global["k"] = buf
}
`)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %v", diags)
	}
	wantDiag(t, diags, `borrowed parameter "buf"`)
	got := strings.Join(facts["a.ok"], "; ")
	if !strings.Contains(got, "param#0 escapes") {
		t.Errorf("ok facts = %q, want param#0 escapes (summary fact without report)", got)
	}
}

func TestSCCOrderBottomUp(t *testing.T) {
	fset, unit := compile(t, preamble+`
func leaf() string { return source() }
func mid() string { return leaf() }
func top() string { return mid() }
`)
	prog := BuildProgram(fset, []*analysis.ProgramUnit{unit})
	pos := map[string]int{}
	for i, scc := range prog.SCCs {
		for _, id := range scc {
			pos[id] = i
		}
	}
	if !(pos["a.leaf"] < pos["a.mid"] && pos["a.mid"] < pos["a.top"]) {
		t.Errorf("SCC order not bottom-up: %v", prog.SCCs)
	}
}

func TestDeterministicDiagnostics(t *testing.T) {
	src := preamble + `
func h1() string { return source() }
func h2() string { return h1() }
func f() {
	emit(h2())
	global["a"] = h1()
	global["b"] = h2()
}
`
	first, _ := analyzeSrc(t, src)
	for i := 0; i < 5; i++ {
		again, _ := analyzeSrc(t, src)
		if strings.Join(first, "\n") != strings.Join(again, "\n") {
			t.Fatalf("diagnostics differ between runs:\n%v\nvs\n%v", first, again)
		}
	}
}
