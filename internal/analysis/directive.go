package analysis

import (
	"strings"
)

// DirectivePrefix introduces an allow directive in a line comment:
//
//	//lint:allow <analyzer>[,<analyzer>...] <justification>
//
// A directive suppresses matching diagnostics on the line it shares with
// code; a directive alone on its line suppresses the line below it (so it
// can sit above a long statement). The analyzer list may be "all". The
// justification is free text and is mandatory by repo policy: the
// allow-directive audit test fails the build when it is missing, which
// keeps every suppression reviewable.
const DirectivePrefix = "//lint:allow"

// Directive is one parsed //lint:allow comment.
type Directive struct {
	// File and Line locate the directive itself.
	File string
	Line int
	// TargetLine is the line whose diagnostics the directive suppresses:
	// its own line when it trails code, the next line otherwise.
	TargetLine int
	// Analyzers lists the analyzer names being allowed ("all" matches
	// every analyzer).
	Analyzers []string
	// Justification is the free text after the analyzer list.
	Justification string
}

// Matches reports whether the directive suppresses the named analyzer.
func (d Directive) Matches(analyzer string) bool {
	for _, a := range d.Analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// ParseDirectives scans raw source for //lint:allow directives. It works
// on source text rather than the AST so that it sees directives anywhere a
// comment can appear, and so the driver, the test harness and the audit
// test share one grammar.
func ParseDirectives(filename string, src []byte) []Directive {
	var out []Directive
	for i, line := range strings.Split(string(src), "\n") {
		idx := strings.Index(line, DirectivePrefix)
		if idx < 0 || mentionOnly(line, idx) {
			continue
		}
		rest := line[idx+len(DirectivePrefix):]
		// Require a space (or end of line) after the marker so that e.g.
		// //lint:allowother is not misread.
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		rest = trimTrailingComment(rest)
		fields := strings.Fields(rest)
		d := Directive{File: filename, Line: i + 1, TargetLine: i + 1}
		if len(fields) > 0 {
			d.Analyzers = strings.Split(fields[0], ",")
			d.Justification = strings.TrimSpace(strings.Join(fields[1:], " "))
		}
		// A directive with no code before it on the line targets the next
		// line instead.
		if strings.TrimSpace(line[:idx]) == "" {
			d.TargetLine = i + 2
		}
		out = append(out, d)
	}
	return out
}

// trimTrailingComment cuts a directive's text at a nested // marker: the
// directive grammar runs to the end of the line or the next comment (as in
// fixture files that put // want expectations after a directive).
func trimTrailingComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

// mentionOnly reports whether the marker at byte offset idx is quoted text
// rather than a live directive: it sits inside a string or rune literal, or
// inside a comment that began earlier on the line (prose quoting the
// grammar, or an analyzer's own error-message literals). The scan is
// line-local, so a marker on the interior line of a multi-line raw string
// is not recognized as quoted; keep such examples on one line.
func mentionOnly(line string, idx int) bool {
	var quote byte // active quote character, 0 when outside any literal
	for i := 0; i < idx && i < len(line); i++ {
		c := line[i]
		switch {
		case quote == 0:
			if c == '"' || c == '`' || c == '\'' {
				quote = c
			} else if c == '/' && i+1 < len(line) && line[i+1] == '/' {
				// The rest of the line is already a comment, so the marker
				// is comment text being quoted, not a directive.
				return true
			}
		case quote == '`':
			if c == '`' {
				quote = 0
			}
		default:
			if c == '\\' {
				i++ // skip the escaped character
			} else if c == quote {
				quote = 0
			}
		}
	}
	return quote != 0
}

// AuditAnalyzerName is the one analyzer whose findings FilterByDirectives
// never suppresses: allowaudit reports malformed //lint: directives, so a
// directive must not be able to silence the report about itself.
const AuditAnalyzerName = "allowaudit"

// FilterByDirectives drops findings suppressed by a matching directive in
// the corresponding file's sources. sources maps a filename (as it appears
// in Finding.Pos.Filename) to its raw content. Findings from the directive
// audit itself (AuditAnalyzerName) are never suppressed.
func FilterByDirectives(findings []Finding, sources map[string][]byte) []Finding {
	dirs := make(map[string][]Directive, len(sources))
	for name, src := range sources {
		if ds := ParseDirectives(name, src); len(ds) > 0 {
			dirs[name] = ds
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		if f.Analyzer != AuditAnalyzerName {
			for _, d := range dirs[f.Pos.Filename] {
				if d.TargetLine == f.Pos.Line && d.Matches(f.Analyzer) {
					suppressed = true
					break
				}
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// BorrowedPrefix introduces a borrowed-parameter annotation:
//
//	//lint:borrowed <analyzer>[,<analyzer>...] <param>[,<param>...] <why>
//
// placed on (or directly above) a function declaration. It tells the named
// dataflow analyzers that the listed parameters are borrowed memory — owned
// by the caller and only valid for the duration of the call — so retaining
// them (storing into heap structures, sending on channels) is a contract
// violation the analyzer reports. The trailing free text documents who owns
// the memory; like allow justifications, it is mandatory (allowaudit flags
// its absence).
const BorrowedPrefix = "//lint:borrowed"

// Borrowed is one parsed //lint:borrowed annotation.
type Borrowed struct {
	// File and Line locate the annotation itself.
	File string
	Line int
	// TargetLine is the line of the function declaration the annotation
	// applies to: its own line when it trails code, the next line
	// otherwise.
	TargetLine int
	// Analyzers lists the dataflow analyzers the annotation addresses.
	Analyzers []string
	// Params lists the borrowed parameter names.
	Params []string
	// Note is the free-text ownership rationale.
	Note string
}

// Matches reports whether the annotation addresses the named analyzer.
func (b Borrowed) Matches(analyzer string) bool {
	for _, a := range b.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ParseBorrowed scans raw source for //lint:borrowed annotations, with the
// same text-based grammar rules as ParseDirectives.
func ParseBorrowed(filename string, src []byte) []Borrowed {
	var out []Borrowed
	for i, line := range strings.Split(string(src), "\n") {
		idx := strings.Index(line, BorrowedPrefix)
		if idx < 0 || mentionOnly(line, idx) {
			continue
		}
		rest := line[idx+len(BorrowedPrefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		rest = trimTrailingComment(rest)
		fields := strings.Fields(rest)
		b := Borrowed{File: filename, Line: i + 1, TargetLine: i + 1}
		if len(fields) > 0 {
			b.Analyzers = strings.Split(fields[0], ",")
		}
		if len(fields) > 1 {
			b.Params = strings.Split(fields[1], ",")
			b.Note = strings.TrimSpace(strings.Join(fields[2:], " "))
		}
		if strings.TrimSpace(line[:idx]) == "" {
			b.TargetLine = i + 2
		}
		out = append(out, b)
	}
	return out
}
