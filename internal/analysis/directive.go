package analysis

import (
	"strings"
)

// DirectivePrefix introduces an allow directive in a line comment:
//
//	//lint:allow <analyzer>[,<analyzer>...] <justification>
//
// A directive suppresses matching diagnostics on the line it shares with
// code; a directive alone on its line suppresses the line below it (so it
// can sit above a long statement). The analyzer list may be "all". The
// justification is free text and is mandatory by repo policy: the
// allow-directive audit test fails the build when it is missing, which
// keeps every suppression reviewable.
const DirectivePrefix = "//lint:allow"

// Directive is one parsed //lint:allow comment.
type Directive struct {
	// File and Line locate the directive itself.
	File string
	Line int
	// TargetLine is the line whose diagnostics the directive suppresses:
	// its own line when it trails code, the next line otherwise.
	TargetLine int
	// Analyzers lists the analyzer names being allowed ("all" matches
	// every analyzer).
	Analyzers []string
	// Justification is the free text after the analyzer list.
	Justification string
}

// Matches reports whether the directive suppresses the named analyzer.
func (d Directive) Matches(analyzer string) bool {
	for _, a := range d.Analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// ParseDirectives scans raw source for //lint:allow directives. It works
// on source text rather than the AST so that it sees directives anywhere a
// comment can appear, and so the driver, the test harness and the audit
// test share one grammar.
func ParseDirectives(filename string, src []byte) []Directive {
	var out []Directive
	for i, line := range strings.Split(string(src), "\n") {
		idx := strings.Index(line, DirectivePrefix)
		if idx < 0 {
			continue
		}
		rest := line[idx+len(DirectivePrefix):]
		// Require a space (or end of line) after the marker so that e.g.
		// //lint:allowother is not misread.
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		fields := strings.Fields(rest)
		d := Directive{File: filename, Line: i + 1, TargetLine: i + 1}
		if len(fields) > 0 {
			d.Analyzers = strings.Split(fields[0], ",")
			d.Justification = strings.TrimSpace(strings.Join(fields[1:], " "))
		}
		// A directive with no code before it on the line targets the next
		// line instead.
		if strings.TrimSpace(line[:idx]) == "" {
			d.TargetLine = i + 2
		}
		out = append(out, d)
	}
	return out
}

// FilterByDirectives drops findings suppressed by a matching directive in
// the corresponding file's sources. sources maps a filename (as it appears
// in Finding.Pos.Filename) to its raw content.
func FilterByDirectives(findings []Finding, sources map[string][]byte) []Finding {
	dirs := make(map[string][]Directive, len(sources))
	for name, src := range sources {
		if ds := ParseDirectives(name, src); len(ds) > 0 {
			dirs[name] = ds
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs[f.Pos.Filename] {
			if d.TargetLine == f.Pos.Line && d.Matches(f.Analyzer) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}
