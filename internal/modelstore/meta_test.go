package modelstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logscape/internal/logmodel"
)

// wideCfg is testCfg with a ladder so wide nothing ever compacts.
func wideCfg() Config {
	cfg := testCfg()
	cfg.Hour, cfg.Day, cfg.Week = 1_000_000, 1_000_000, 1_000_000
	return cfg
}

func TestOpenRefusesCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testCfg()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testCfg()); err == nil ||
		!strings.Contains(err.Error(), metaFile) {
		t.Errorf("Open over corrupt sidecar = %v, want refusal naming %s", err, metaFile)
	}
	if _, err := OpenRead(dir); err == nil {
		t.Error("OpenRead over corrupt sidecar accepted")
	}

	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testCfg()); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("Open over future-version sidecar = %v, want version refusal", err)
	}
}

func TestOpenReadRefusesNonStore(t *testing.T) {
	if _, err := OpenRead(t.TempDir()); err == nil ||
		!strings.Contains(err.Error(), "not a model store") {
		t.Errorf("OpenRead on an empty dir = %v, want 'not a model store'", err)
	}

	// A sidecar carrying broken geometry must be refused by the same
	// validation Open applies to its Config.
	dir := t.TempDir()
	meta := `{"version": 1, "bucket_width": 0, "window_buckets": 2,` +
		` "hour": 4000, "day": 16000, "week": 64000}`
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRead(dir); err == nil {
		t.Error("OpenRead accepted a sidecar with zero bucket width")
	}
}

func TestLoadRefusesLevelNameMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, wideCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	// Rename the raw segment to an hour name without touching its level
	// byte: the next load must notice the lie.
	old := filepath.Join(dir, segName(levelRaw, 0))
	if err := os.Rename(old, filepath.Join(dir, segName(levelHour, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRead(dir); err == nil ||
		!strings.Contains(err.Error(), "in its name") {
		t.Errorf("OpenRead over a mislabeled segment = %v, want level refusal", err)
	}
}

func TestTrajectoryDepKey(t *testing.T) {
	s, err := Open(t.TempDir(), wideCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rec(0)
	r.Model = []byte("{\n  \"technique\": \"l3\",\n  \"deps\": [{\"app\": \"A\", \"group\": \"G\"}]\n}\n")
	r.Scores = nil
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	pts, err := s.Trajectory("A->G")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !pts[0].Present || pts[0].HasScore {
		t.Errorf("dep-key trajectory = %+v, want one present scoreless point", pts)
	}
	if pts, err = s.Trajectory("A->OTHER"); err != nil || len(pts) != 1 || pts[0].Present {
		t.Errorf("absent dep-key trajectory = %+v, %v", pts, err)
	}
}

func TestTrajectoryRefusesCorruptModel(t *testing.T) {
	s, err := Open(t.TempDir(), wideCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rec(0)
	r.Model = []byte("not a model document\n")
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Trajectory("a--b"); err == nil {
		t.Error("Trajectory parsed a non-JSON model document")
	}
	if _, err := s.DiffAt(2000, 2000); err == nil {
		t.Error("DiffAt parsed a non-JSON model document")
	}
}

func TestDiffAtRefusesUnretainedInstants(t *testing.T) {
	s, err := Open(t.TempDir(), wideCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(5)); err != nil {
		t.Fatal(err)
	}
	after := logmodel.Millis(10_000)
	before := logmodel.Millis(100)
	if _, err := s.DiffAt(before, after); err == nil ||
		!strings.Contains(err.Error(), "no model retained") {
		t.Errorf("DiffAt with unretained from = %v, want refusal", err)
	}
	if _, err := s.DiffAt(after, before); err == nil ||
		!strings.Contains(err.Error(), "no model retained") {
		t.Errorf("DiffAt with unretained to = %v, want refusal", err)
	}
}
