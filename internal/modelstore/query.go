package modelstore

import (
	"bytes"
	"fmt"
	"sort"

	"logscape/internal/core"
	"logscape/internal/drift"
	"logscape/internal/logmodel"
)

// TrajPoint is one sample of a key's history: the bucket it was observed
// in, when that bucket closed, whether the key's edge was present in the
// model at that instant, and — when the follower ran with score tracking
// — the drift score (L2 G² statistic or delay-profile distance).
type TrajPoint struct {
	Bucket   int64
	At       logmodel.Millis // bucket close time (Range.End)
	Present  bool
	Score    float64
	HasScore bool
}

// Trajectory returns the per-record history of one key (drift key syntax:
// "A--B" for a pair, "App->GROUP" for a directed dependency), oldest
// first. Every retained record contributes a point; coarse tiers sample
// the trajectory exactly as they sample the model history.
func (s *Store) Trajectory(key string) ([]TrajPoint, error) {
	recs, err := s.Records()
	if err != nil {
		return nil, err
	}
	out := make([]TrajPoint, 0, len(recs))
	for _, rec := range recs {
		doc, err := core.ReadModel(bytes.NewReader(rec.Model))
		if err != nil {
			return nil, fmt.Errorf("modelstore: bucket %d: %w", rec.Bucket, err)
		}
		p := TrajPoint{Bucket: rec.Bucket, At: rec.Range.End, Present: docHasKey(doc, key)}
		if i := sort.Search(len(rec.Scores), func(i int) bool { return rec.Scores[i].Key >= key }); i < len(rec.Scores) && rec.Scores[i].Key == key {
			p.Score, p.HasScore = rec.Scores[i].Value, true
		}
		out = append(out, p)
	}
	return out, nil
}

// docHasKey reports whether the drift-syntax key names an edge present in
// the document.
func docHasKey(doc core.ModelDocument, key string) bool {
	for _, p := range doc.Pairs {
		if drift.PairKey(p.A, p.B) == key {
			return true
		}
	}
	for _, d := range doc.Deps {
		if drift.DepKey(d.App, d.Group) == key {
			return true
		}
	}
	return false
}

// Diff holds the model delta between two retained instants, in the same
// only-in-A / only-in-B shape as core.DiffModels.
type Diff struct {
	From, To       Record
	PairsGone      []core.Pair // in From only
	PairsNew       []core.Pair // in To only
	DepsGone       []core.AppServicePair
	DepsNew        []core.AppServicePair
	FromDoc, ToDoc core.ModelDocument
}

// DiffAt compares the models retained at t1 and t2.
func (s *Store) DiffAt(t1, t2 logmodel.Millis) (*Diff, error) {
	a, ok, err := s.ModelAt(t1)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("modelstore: no model retained at or before %s", t1.Time().Format("2006-01-02T15:04:05.000Z"))
	}
	b, ok, err := s.ModelAt(t2)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("modelstore: no model retained at or before %s", t2.Time().Format("2006-01-02T15:04:05.000Z"))
	}
	da, err := core.ReadModel(bytes.NewReader(a.Model))
	if err != nil {
		return nil, fmt.Errorf("modelstore: bucket %d: %w", a.Bucket, err)
	}
	db, err := core.ReadModel(bytes.NewReader(b.Model))
	if err != nil {
		return nil, fmt.Errorf("modelstore: bucket %d: %w", b.Bucket, err)
	}
	d := &Diff{From: a, To: b, FromDoc: da, ToDoc: db}
	d.PairsGone, d.PairsNew = core.DiffModels(da.PairSet(), db.PairSet())
	d.DepsGone, d.DepsNew = core.DiffDeps(da.DepSet(), db.DepSet())
	return d, nil
}
