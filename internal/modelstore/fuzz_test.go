package modelstore

import (
	"bytes"
	"testing"
)

// FuzzSegmentRoundTrip feeds arbitrary bytes to the segment decoder. The
// decoder must never panic; whatever it accepts must re-encode to the
// exact same byte image and decode again to the same records — the codec
// has one canonical form, so accept→encode is the identity on accepted
// inputs.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeSegment(levelRaw, nil))
	f.Add(encodeSegment(levelRaw, []Record{testRecord(0, "doc\n")}))
	f.Add(encodeSegment(levelWeek, []Record{testRecord(2, "a\n"), testRecord(9, "b\n")}))
	long := testRecord(1, "{\"technique\":\"l1\"}\n")
	long.Scores = append(long.Scores, Score{Key: "x--y", Value: 2.25})
	f.Add(encodeSegment(levelHour, []Record{long}))
	f.Fuzz(func(t *testing.T, data []byte) {
		level, recs, err := decodeSegment(data)
		if err != nil {
			return
		}
		img := encodeSegment(level, recs)
		if !bytes.Equal(img, data) {
			t.Fatalf("accepted image is not canonical:\n in  %x\n out %x", data, img)
		}
		level2, recs2, err := decodeSegment(img)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if level2 != level || len(recs2) != len(recs) {
			t.Fatalf("re-decode changed shape: %d/%d records, level %d/%d", len(recs), len(recs2), level, level2)
		}
	})
}
