package modelstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"logscape/internal/logmodel"
)

// Segment file format (versioned; see DESIGN.md §14):
//
//	header:  "LSEG" | version byte | level byte
//	record:  u32le payload length | u32le CRC32-IEEE(payload) | payload
//	payload: uvarint bucket index
//	         uvarint range start (ms)      — pre-epoch streams are refused
//	         uvarint range width (ms)
//	         uvarint model length | model bytes (verbatim live document)
//	         uvarint score count  | per score: uvarint key length | key |
//	                                u64le IEEE-754 bits
//	         uvarint evidence count | per line: uvarint length | wire bytes
//
// Everything is length-prefixed and CRC-guarded: a torn or bit-flipped
// file fails loudly at read time instead of yielding a silently truncated
// history. Whole files are written via tmp+rename, so refusal (rather
// than best-effort salvage) is the safe policy — a verified previous
// version of every file always exists.
const (
	segMagic      = "LSEG"
	formatVersion = 1

	// maxRecordLen bounds a single record's payload so a corrupt length
	// prefix cannot drive a multi-gigabyte allocation before the CRC check.
	maxRecordLen = 1 << 28
)

// Compaction levels, finest to coarsest. The numeric order is load-bearing:
// cleanup and compaction treat a higher level as superseding the lower
// levels it covers.
const (
	levelRaw = iota
	levelHour
	levelDay
	levelWeek
	numLevels
)

var levelNames = [numLevels]string{"raw", "hour", "day", "week"}

// Score is one per-key drift score attached to a record, as produced by
// the miners' feature stream (drift.PairKey / drift.DepKey key syntax).
// Records store scores sorted by key.
type Score struct {
	Key   string
	Value float64
}

// Record is one closed bucket's persisted state: the model document
// exactly as it was emitted live (byte-for-byte), the drift scores at
// that instant, and — at the raw level only — the bucket's entries as
// wire-format lines, which is what segment-backed resume replays.
type Record struct {
	Bucket   int64
	Range    logmodel.TimeRange
	Model    []byte
	Scores   []Score
	Evidence [][]byte
}

// appendRecord appends the framed encoding of r to dst.
func appendRecord(dst []byte, r Record) []byte {
	var p []byte
	p = binary.AppendUvarint(p, uint64(r.Bucket))
	p = binary.AppendUvarint(p, uint64(r.Range.Start))
	p = binary.AppendUvarint(p, uint64(r.Range.End-r.Range.Start))
	p = binary.AppendUvarint(p, uint64(len(r.Model)))
	p = append(p, r.Model...)
	p = binary.AppendUvarint(p, uint64(len(r.Scores)))
	for _, s := range r.Scores {
		p = binary.AppendUvarint(p, uint64(len(s.Key)))
		p = append(p, s.Key...)
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(s.Value))
	}
	p = binary.AppendUvarint(p, uint64(len(r.Evidence)))
	for _, line := range r.Evidence {
		p = binary.AppendUvarint(p, uint64(len(line)))
		p = append(p, line...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(p))
	return append(dst, p...)
}

// validRecord reports whether r is storable: non-negative times (the file
// name and varint encodings both assume them), a non-empty forward range,
// and a non-empty model document.
func validRecord(r Record) error {
	switch {
	case r.Bucket < 0:
		return fmt.Errorf("modelstore: negative bucket index %d", r.Bucket)
	case r.Range.Start < 0:
		return fmt.Errorf("modelstore: pre-epoch record start %d", r.Range.Start)
	case r.Range.End <= r.Range.Start:
		return fmt.Errorf("modelstore: empty record range [%d,%d)", r.Range.Start, r.Range.End)
	case len(r.Model) == 0:
		return fmt.Errorf("modelstore: record for bucket %d has no model document", r.Bucket)
	}
	return nil
}

// parseRecord decodes one record payload (the CRC has already been
// verified). Every length is checked against the remaining bytes before
// slicing, and trailing garbage is an error: the payload must be consumed
// exactly.
func parseRecord(p []byte) (Record, error) {
	var r Record
	u := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("modelstore: truncated varint in record")
		}
		// Reject non-minimal encodings: the format has exactly one byte
		// image per value, which is what lets the round-trip tests assert
		// encode(decode(x)) == x on every accepted input.
		if n > 1 && v>>(7*(n-1)) == 0 {
			return 0, fmt.Errorf("modelstore: non-minimal varint in record")
		}
		p = p[n:]
		return v, nil
	}
	take := func(n uint64) ([]byte, error) {
		if n > uint64(len(p)) {
			return nil, fmt.Errorf("modelstore: record field length %d exceeds remaining %d bytes", n, len(p))
		}
		b := p[:n:n]
		p = p[n:]
		return b, nil
	}

	bucket, err := u()
	if err != nil {
		return r, err
	}
	start, err := u()
	if err != nil {
		return r, err
	}
	width, err := u()
	if err != nil {
		return r, err
	}
	r.Bucket = int64(bucket)
	r.Range = logmodel.TimeRange{Start: logmodel.Millis(start), End: logmodel.Millis(start + width)}

	n, err := u()
	if err != nil {
		return r, err
	}
	if r.Model, err = take(n); err != nil {
		return r, err
	}

	if n, err = u(); err != nil {
		return r, err
	}
	prevKey := ""
	for i := uint64(0); i < n; i++ {
		kl, err := u()
		if err != nil {
			return r, err
		}
		kb, err := take(kl)
		if err != nil {
			return r, err
		}
		if len(p) < 8 {
			return r, fmt.Errorf("modelstore: truncated score value")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		key := string(kb)
		if i > 0 && key <= prevKey {
			return r, fmt.Errorf("modelstore: score keys out of order (%q after %q)", key, prevKey)
		}
		prevKey = key
		r.Scores = append(r.Scores, Score{Key: key, Value: v})
	}

	if n, err = u(); err != nil {
		return r, err
	}
	for i := uint64(0); i < n; i++ {
		ll, err := u()
		if err != nil {
			return r, err
		}
		line, err := take(ll)
		if err != nil {
			return r, err
		}
		r.Evidence = append(r.Evidence, line)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("modelstore: %d trailing bytes after record", len(p))
	}
	if err := validRecord(r); err != nil {
		return r, err
	}
	return r, nil
}

// encodeSegment builds the full byte image of a segment file.
func encodeSegment(level int, recs []Record) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, segMagic...)
	buf = append(buf, formatVersion, byte(level))
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// decodeSegment parses a full segment file image, verifying the header,
// every record's CRC, and that bucket indexes are strictly increasing.
func decodeSegment(data []byte) (level int, recs []Record, err error) {
	if len(data) < len(segMagic)+2 || string(data[:len(segMagic)]) != segMagic {
		return 0, nil, fmt.Errorf("modelstore: not a segment file (bad magic)")
	}
	if v := data[len(segMagic)]; v != formatVersion {
		return 0, nil, fmt.Errorf("modelstore: segment format version %d, want %d", v, formatVersion)
	}
	level = int(data[len(segMagic)+1])
	if level < 0 || level >= numLevels {
		return 0, nil, fmt.Errorf("modelstore: unknown segment level %d", level)
	}
	p := data[len(segMagic)+2:]
	last := int64(-1)
	for len(p) > 0 {
		if len(p) < 8 {
			return 0, nil, fmt.Errorf("modelstore: truncated record frame (%d bytes left)", len(p))
		}
		n := binary.LittleEndian.Uint32(p)
		sum := binary.LittleEndian.Uint32(p[4:])
		p = p[8:]
		if n > maxRecordLen {
			return 0, nil, fmt.Errorf("modelstore: record length %d exceeds cap %d", n, maxRecordLen)
		}
		if uint64(n) > uint64(len(p)) {
			return 0, nil, fmt.Errorf("modelstore: truncated record (%d byte payload, %d left)", n, len(p))
		}
		payload := p[:n]
		p = p[n:]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return 0, nil, fmt.Errorf("modelstore: record CRC mismatch (%08x, want %08x)", got, sum)
		}
		r, err := parseRecord(payload)
		if err != nil {
			return 0, nil, err
		}
		if r.Bucket <= last {
			return 0, nil, fmt.Errorf("modelstore: record buckets out of order (%d after %d)", r.Bucket, last)
		}
		last = r.Bucket
		recs = append(recs, r)
	}
	return level, recs, nil
}

// writeSegment atomically persists a segment file: full image to a
// sibling temp file, rename over the target. A crash mid-write leaves the
// previous version (or nothing) — never a torn file.
func writeSegment(path string, level int, recs []Record) (int, error) {
	data := encodeSegment(level, recs)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return 0, err
	}
	return len(data), os.Rename(tmp, path)
}

// readSegment loads and verifies one segment file.
func readSegment(path string) (int, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	level, recs, err := decodeSegment(data)
	if err != nil {
		return 0, nil, fmt.Errorf("modelstore: %s: %w", path, err)
	}
	return level, recs, nil
}
