// Package modelstore persists the model stream that follow mode emits:
// every closed bucket's model document, the evidence (wire-format log
// entries) that produced it, and the per-key drift scores, appended to an
// on-disk segment store that can answer "what did the landscape look like
// at time T?" long after the bucket scrolled out of the window.
//
// The store is append-only and deterministic. Records are framed with a
// CRC and written with the same tmp+rename discipline as the stream
// checkpoint, so a crash at any byte leaves only whole, verifiable files
// behind. Model bytes are stored verbatim — querying model-at-time T
// returns exactly the document the follower printed live at T, which is
// what makes the store's round-trip contract testable byte-for-byte.
//
// Old segments are compacted on a fixed ladder (raw → hour → day → week):
// compaction only selects records and strips evidence, never rewrites
// model bytes, so retained instants stay byte-identical across any number
// of compaction passes. The raw tier is retained at least as long as the
// ingest window spans, which is what lets a killed follower resume by
// replaying the window from local segments instead of re-tailing the
// source logs (see Store.Hydrate).
package modelstore
