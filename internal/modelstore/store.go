package modelstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// metaVersion guards the store.json sidecar that pins the store's geometry.
const metaVersion = 1

// metaFile is the geometry sidecar's name inside the store directory.
const metaFile = "store.json"

// Config describes a store's geometry. BucketWidth and WindowBuckets must
// match the follower's ingest window — the raw retention horizon is
// derived from them, and segment-backed resume depends on it. The ladder
// widths default to literal hour/day/week; tests shrink them to exercise
// compaction without day-long corpora.
type Config struct {
	// BucketWidth and WindowBuckets mirror the stream.Config geometry of
	// the follower writing the store. Required (no defaults): a store is
	// always created by a configured follower, and a silent default here
	// could desynchronize the raw retention horizon from the real window.
	BucketWidth   logmodel.Millis
	WindowBuckets int

	// Hour, Day and Week are the compaction granule widths (raw segments
	// are grouped per Hour). Zero values default to the literal durations.
	Hour, Day, Week logmodel.Millis

	// Metrics receives the store.* counters; nil disables collection.
	Metrics *obs.Registry
}

// withDefaults fills the ladder defaults and validates the geometry.
func (c Config) withDefaults() (Config, error) {
	if c.Hour == 0 {
		c.Hour = logmodel.MillisPerHour
	}
	if c.Day == 0 {
		c.Day = logmodel.MillisPerDay
	}
	if c.Week == 0 {
		c.Week = 7 * logmodel.MillisPerDay
	}
	switch {
	case c.BucketWidth <= 0 || c.WindowBuckets <= 0:
		return c, fmt.Errorf("modelstore: window geometry %dms×%d must be positive", c.BucketWidth, c.WindowBuckets)
	case c.Hour <= 0 || c.Day < c.Hour || c.Week < c.Day:
		return c, fmt.Errorf("modelstore: compaction ladder %d/%d/%d must be positive and non-decreasing", c.Hour, c.Day, c.Week)
	}
	return c, nil
}

// storeMeta is the JSON sidecar pinning a store directory's geometry, so
// reopening with a different configuration refuses instead of mis-grouping
// records, and the query subcommands can recover the geometry from the
// directory alone.
type storeMeta struct {
	Version       int             `json:"version"`
	BucketWidth   logmodel.Millis `json:"bucket_width"`
	WindowBuckets int             `json:"window_buckets"`
	Hour          logmodel.Millis `json:"hour"`
	Day           logmodel.Millis `json:"day"`
	Week          logmodel.Millis `json:"week"`
}

// segInfo is one on-disk segment in the store's index: its level, granule
// start, and path. Segments cover disjoint time ranges, so sorting by
// start also sorts the records they hold by bucket index.
type segInfo struct {
	level int
	start logmodel.Millis
	path  string
}

// Store is an on-disk model history. It is not safe for concurrent use:
// the follower is the single writer, and the query subcommands open the
// directory read-only.
type Store struct {
	dir      string
	cfg      Config
	readOnly bool

	segs []segInfo // sorted by start, disjoint coverage

	// active holds the records of the newest raw granule in memory: the
	// granule's file is rewritten whole (tmp+rename) on every append.
	active      []Record
	hasActive   bool
	activeStart logmodel.Millis

	latest    logmodel.Millis // End of the newest record in the store
	maxSealed int64           // highest bucket index outside the active granule

	mRecords, mSegments, mCompactions, mBytes *obs.Counter
}

// Open opens (or creates) a store directory for appending. An existing
// directory's geometry sidecar must match cfg exactly.
func Open(dir string, cfg Config) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := storeMeta{
		Version:       metaVersion,
		BucketWidth:   cfg.BucketWidth,
		WindowBuckets: cfg.WindowBuckets,
		Hour:          cfg.Hour,
		Day:           cfg.Day,
		Week:          cfg.Week,
	}
	got, err := readMeta(dir)
	switch {
	case err != nil:
		return nil, err
	case got == nil:
		if err := writeMeta(dir, want); err != nil {
			return nil, err
		}
	case *got != want:
		return nil, fmt.Errorf("modelstore: %s was written with geometry %+v, reopened with %+v", dir, *got, want)
	}
	s := &Store{dir: dir, cfg: cfg}
	s.mRecords = cfg.Metrics.Counter("store.records")
	s.mSegments = cfg.Metrics.Counter("store.segments_written")
	s.mCompactions = cfg.Metrics.Counter("store.compactions")
	s.mBytes = cfg.Metrics.Counter("store.bytes_written")
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenRead opens an existing store read-only, recovering the geometry from
// the sidecar. Superseded files left by a killed compaction are ignored
// in memory but not deleted — queries have no side effects.
func OpenRead(dir string) (*Store, error) {
	meta, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		return nil, fmt.Errorf("modelstore: %s is not a model store (no %s)", dir, metaFile)
	}
	cfg, err := Config{
		BucketWidth:   meta.BucketWidth,
		WindowBuckets: meta.WindowBuckets,
		Hour:          meta.Hour,
		Day:           meta.Day,
		Week:          meta.Week,
	}.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, cfg: cfg, readOnly: true}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// Empty reports whether the store holds no segments yet.
func (s *Store) Empty() bool { return len(s.segs) == 0 }

// Geometry returns the store's effective configuration (sans Metrics).
func (s *Store) Geometry() Config {
	cfg := s.cfg
	cfg.Metrics = nil
	return cfg
}

func readMeta(dir string) (*storeMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m storeMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("modelstore: %s: %w", filepath.Join(dir, metaFile), err)
	}
	if m.Version != metaVersion {
		return nil, fmt.Errorf("modelstore: %s version %d, want %d", metaFile, m.Version, metaVersion)
	}
	return &m, nil
}

func writeMeta(dir string, m storeMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, metaFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// segName builds a segment file name. The zero-padded fixed-width start
// keeps lexicographic directory order equal to chronological order.
func segName(level int, start logmodel.Millis) string {
	return fmt.Sprintf("%s-%020d.seg", levelNames[level], start)
}

// parseSegName inverts segName; ok is false for foreign files.
func parseSegName(name string) (level int, start logmodel.Millis, ok bool) {
	base, found := strings.CutSuffix(name, ".seg")
	if !found {
		return 0, 0, false
	}
	for lv, ln := range levelNames {
		if rest, found := strings.CutPrefix(base, ln+"-"); found {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil || n < 0 {
				return 0, 0, false
			}
			return lv, logmodel.Millis(n), true
		}
	}
	return 0, 0, false
}

// granuleWidth returns the time span one segment at the given level
// covers. Raw granules are grouped per Hour like the hour tier.
func (s *Store) granuleWidth(level int) logmodel.Millis {
	switch level {
	case levelDay:
		return s.cfg.Day
	case levelWeek:
		return s.cfg.Week
	default:
		return s.cfg.Hour
	}
}

// floorAlign floors t to a multiple of width (t is never negative here —
// validRecord refuses pre-epoch records).
func floorAlign(t, width logmodel.Millis) logmodel.Millis { return t - t%width }

// load scans the directory, drops superseded files (a crash between a
// compaction's rename and its source deletion leaves both; the coarser
// file wins), removes stray temp files, and primes the in-memory state:
// the active raw granule's records, the newest record time, and the
// highest sealed bucket index.
func (s *Store) load() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var segs []segInfo
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			if !s.readOnly {
				if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		lv, start, ok := parseSegName(name)
		if !ok {
			continue
		}
		segs = append(segs, segInfo{level: lv, start: start, path: filepath.Join(s.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].start != segs[j].start {
			return segs[i].start < segs[j].start
		}
		return segs[i].level > segs[j].level
	})
	// Supersede pass: a segment is covered (and deleted) when a coarser
	// one spans its granule start.
	s.segs = make([]segInfo, 0, len(segs))
	for _, si := range segs {
		covered := false
		for _, other := range segs {
			if other.level > si.level &&
				other.start <= si.start && si.start < other.start+s.granuleWidth(other.level) {
				covered = true
				break
			}
		}
		if covered {
			if !s.readOnly {
				if err := os.Remove(si.path); err != nil {
					return err
				}
			}
			continue
		}
		s.segs = append(s.segs, si)
	}

	if n := len(s.segs); n > 0 {
		newest := s.segs[n-1]
		recs, err := s.loadSeg(newest)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("modelstore: %s holds no records", newest.path)
		}
		s.latest = recs[len(recs)-1].Range.End
		if newest.level == levelRaw {
			s.active, s.hasActive, s.activeStart = recs, true, newest.start
			if n > 1 {
				prev, err := s.loadSeg(s.segs[n-2])
				if err != nil {
					return err
				}
				if len(prev) == 0 {
					return fmt.Errorf("modelstore: %s holds no records", s.segs[n-2].path)
				}
				s.maxSealed = prev[len(prev)-1].Bucket
			} else {
				s.maxSealed = -1
			}
		} else {
			s.maxSealed = recs[len(recs)-1].Bucket
		}
	} else {
		s.maxSealed = -1
	}
	return nil
}

// loadSeg reads one segment and verifies the file's level byte matches
// its name.
func (s *Store) loadSeg(si segInfo) ([]Record, error) {
	lv, recs, err := readSegment(si.path)
	if err != nil {
		return nil, err
	}
	if lv != si.level {
		return nil, fmt.Errorf("modelstore: %s has level %s inside, %s in its name",
			si.path, levelNames[lv], levelNames[si.level])
	}
	return recs, nil
}

// Append persists one closed bucket's record and runs the compaction
// pass. Re-appending a bucket index already present in the active granule
// replaces it and everything after it — that is exactly the crash window
// of a follower killed between the store append and the checkpoint write,
// whose resume re-delivers the same bucket with the same content.
func (s *Store) Append(rec Record) error {
	if s.readOnly {
		return fmt.Errorf("modelstore: store opened read-only")
	}
	if err := validRecord(rec); err != nil {
		return err
	}
	for i := 1; i < len(rec.Scores); i++ {
		if rec.Scores[i].Key <= rec.Scores[i-1].Key {
			return fmt.Errorf("modelstore: scores not sorted by key (%q after %q)",
				rec.Scores[i].Key, rec.Scores[i-1].Key)
		}
	}
	if rec.Bucket <= s.maxSealed {
		return fmt.Errorf("modelstore: bucket %d rewinds past sealed segments (last sealed %d)", rec.Bucket, s.maxSealed)
	}
	g := floorAlign(rec.Range.Start, s.cfg.Hour)
	switch {
	case !s.hasActive || g > s.activeStart:
		if s.hasActive {
			s.maxSealed = s.active[len(s.active)-1].Bucket
		} else if len(s.segs) > 0 && s.segs[len(s.segs)-1].start > g {
			return fmt.Errorf("modelstore: record at %d predates existing segments", rec.Range.Start)
		}
		s.active, s.hasActive, s.activeStart = nil, true, g
	case g < s.activeStart:
		return fmt.Errorf("modelstore: record at %d predates the active segment (start %d)", rec.Range.Start, s.activeStart)
	default:
		for len(s.active) > 0 && s.active[len(s.active)-1].Bucket >= rec.Bucket {
			s.active = s.active[:len(s.active)-1]
		}
	}
	s.active = append(s.active, rec)

	path := filepath.Join(s.dir, segName(levelRaw, s.activeStart))
	n, err := writeSegment(path, levelRaw, s.active)
	if err != nil {
		return err
	}
	s.noteWrite(n)
	s.upsertSeg(segInfo{level: levelRaw, start: s.activeStart, path: path})
	if rec.Range.End > s.latest {
		s.latest = rec.Range.End
	}
	s.mRecords.Inc()
	return s.compact()
}

// noteWrite records one segment file write in the counters.
func (s *Store) noteWrite(bytes int) {
	s.mSegments.Inc()
	s.mBytes.Add(int64(bytes))
}

// upsertSeg inserts or replaces the index entry for (level, start),
// keeping s.segs sorted by start.
func (s *Store) upsertSeg(si segInfo) {
	for i := range s.segs {
		if s.segs[i].level == si.level && s.segs[i].start == si.start {
			s.segs[i] = si
			return
		}
	}
	s.segs = append(s.segs, si)
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].start < s.segs[j].start })
}

// dropSeg removes the index entry for path and deletes the file.
func (s *Store) dropSeg(path string) error {
	for i := range s.segs {
		if s.segs[i].path == path {
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			break
		}
	}
	return os.Remove(path)
}

// compact runs the deterministic compaction ladder to a fixed point. All
// thresholds are measured in stream time against the newest record's End
// — wall clocks never participate, so a replayed stream compacts
// identically wherever and whenever it runs.
//
//	raw  → hour: granule end ≤ latest − window span (resume no longer
//	             needs its evidence); keep the granule's last record,
//	             strip evidence.
//	hour → day:  the day granule is a full Day behind latest and no raw
//	             segments remain inside it; keep the last hour record.
//	day  → week: same one-Week-behind rule over day records.
//
// A jump in stream time can cascade a granule through several tiers in
// one pass; the loop runs until nothing changes.
func (s *Store) compact() error {
	span := s.cfg.BucketWidth * logmodel.Millis(s.cfg.WindowBuckets)
	for {
		changed := false
		for _, si := range append([]segInfo(nil), s.segs...) {
			switch si.level {
			case levelRaw:
				if s.hasActive && si.start == s.activeStart {
					continue
				}
				if si.start+s.cfg.Hour > s.latest-span {
					continue
				}
				recs, err := s.loadSeg(si)
				if err != nil {
					return err
				}
				last := recs[len(recs)-1]
				last.Evidence = nil
				if err := s.promote(si, levelHour, si.start, last); err != nil {
					return err
				}
				changed = true
			case levelHour:
				d := floorAlign(si.start, s.cfg.Day)
				if done, err := s.merge(si.level, d, s.cfg.Day, levelDay); err != nil {
					return err
				} else if done {
					changed = true
				}
			case levelDay:
				w := floorAlign(si.start, s.cfg.Week)
				if done, err := s.merge(si.level, w, s.cfg.Week, levelWeek); err != nil {
					return err
				} else if done {
					changed = true
				}
			}
			if changed {
				break // s.segs changed under the iteration; restart
			}
		}
		if !changed {
			return nil
		}
	}
}

// merge collapses every level-`from` segment inside the target granule
// [start, start+width) into one record at level `to`, provided the whole
// granule is at least one width behind the newest record and no
// finer-level segment remains inside it. Returns whether it compacted.
func (s *Store) merge(from int, start, width logmodel.Millis, to int) (bool, error) {
	if start+width > s.latest-width {
		return false, nil
	}
	var sources []segInfo
	for _, si := range s.segs {
		if si.start < start || si.start >= start+width {
			continue
		}
		if si.level < from {
			return false, nil // finer tier still present; it compacts first
		}
		if si.level == from {
			sources = append(sources, si)
		}
	}
	if len(sources) == 0 {
		return false, nil
	}
	recs, err := s.loadSeg(sources[len(sources)-1])
	if err != nil {
		return false, err
	}
	last := recs[len(recs)-1]
	if err := s.promote(sources[len(sources)-1], to, start, last); err != nil {
		return false, err
	}
	for _, si := range sources[:len(sources)-1] {
		if err := s.dropSeg(si.path); err != nil {
			return false, err
		}
	}
	return true, nil
}

// promote writes rec as the single record of a level-`to` segment at
// granule start, then removes the source segment. Order matters for crash
// safety: the coarse file lands first (rename), the fine file is deleted
// second; load's supersede pass resolves the overlap if the process dies
// between the two.
func (s *Store) promote(src segInfo, to int, start logmodel.Millis, rec Record) error {
	path := filepath.Join(s.dir, segName(to, start))
	n, err := writeSegment(path, to, []Record{rec})
	if err != nil {
		return err
	}
	s.noteWrite(n)
	if err := s.dropSeg(src.path); err != nil {
		return err
	}
	s.upsertSeg(segInfo{level: to, start: start, path: path})
	s.mCompactions.Inc()
	return nil
}

// Records returns every retained record in bucket order, across all
// levels. Coverage is disjoint (compaction deletes what it supersedes),
// so concatenating segments in start order preserves bucket order.
func (s *Store) Records() ([]Record, error) {
	var out []Record
	for _, si := range s.segs {
		recs, err := s.loadSeg(si)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Bucket <= out[i-1].Bucket {
			return nil, fmt.Errorf("modelstore: segments overlap (bucket %d after %d)", out[i].Bucket, out[i-1].Bucket)
		}
	}
	return out, nil
}

// ModelAt returns the newest retained record whose bucket had closed by
// time t — the model an observer tailing the follower would have held at
// t. ok is false when t predates the first retained record.
func (s *Store) ModelAt(t logmodel.Millis) (Record, bool, error) {
	for i := len(s.segs) - 1; i >= 0; i-- {
		recs, err := s.loadSeg(s.segs[i])
		if err != nil {
			return Record{}, false, err
		}
		for j := len(recs) - 1; j >= 0; j-- {
			if recs[j].Range.End <= t {
				return recs[j], true, nil
			}
		}
	}
	return Record{}, false, nil
}

// SegmentRef names the segment file and record ordinal holding a given
// instant — the pointer drift alerts carry so an operator can jump from a
// change-point line to the exact on-disk evidence.
type SegmentRef struct {
	File   string // base name of the segment file
	Record int    // zero-based record ordinal within the file
}

// String renders the reference as "file#ordinal".
func (r SegmentRef) String() string { return fmt.Sprintf("%s#%d", r.File, r.Record) }

// Locate returns the segment reference of the record covering time t
// (Start ≤ t < End), or ok=false when no retained record covers it.
func (s *Store) Locate(t logmodel.Millis) (SegmentRef, bool, error) {
	for i := len(s.segs) - 1; i >= 0; i-- {
		if s.segs[i].start > t {
			continue
		}
		recs, err := s.loadSeg(s.segs[i])
		if err != nil {
			return SegmentRef{}, false, err
		}
		for j := len(recs) - 1; j >= 0; j-- {
			if recs[j].Range.Contains(t) {
				return SegmentRef{File: filepath.Base(s.segs[i].path), Record: j}, true, nil
			}
		}
		// Records can outspan their granule when buckets are wider than
		// the Hour granule, so keep scanning earlier segments.
	}
	return SegmentRef{}, false, nil
}
