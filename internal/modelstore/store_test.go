package modelstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/stream"
)

// testCfg is a miniature geometry that exercises the whole compaction
// ladder with second-scale corpora: 1s buckets, a 2-bucket window, 4s
// "hours", 16s "days", 64s "weeks".
func testCfg() Config {
	return Config{
		BucketWidth:   1000,
		WindowBuckets: 2,
		Hour:          4_000,
		Day:           16_000,
		Week:          64_000,
	}
}

// rec builds a record for bucket i with a deterministic unique model
// document (valid JSON, so Trajectory can parse it) and one evidence line.
func rec(i int64) Record {
	start := logmodel.Millis(i * 1000)
	model := fmt.Sprintf("{\n  \"technique\": \"l1\",\n  \"pairs\": [{\"a\": \"app%d\", \"b\": \"db\"}]\n}\n", i)
	return Record{
		Bucket: i,
		Range:  logmodel.TimeRange{Start: start, End: start + 1000},
		Model:  []byte(model),
		Scores: []Score{{Key: fmt.Sprintf("app%d--db", i), Value: float64(i)}},
		Evidence: [][]byte{
			logmodel.AppendEntry(nil, logmodel.Entry{Time: start, Source: fmt.Sprintf("app%d", i), Host: "h", Message: "m"}),
		},
	}
}

func TestModelAtReturnsExactBytes(t *testing.T) {
	// A wide ladder: nothing compacts, every bucket's instant stays
	// retained and must come back byte-exact.
	cfg := testCfg()
	cfg.Hour, cfg.Day, cfg.Week = 1_000_000, 1_000_000, 1_000_000
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 6; i++ {
		// Query exactly at close time, and just before the next close.
		for _, at := range []logmodel.Millis{logmodel.Millis(i*1000 + 1000), logmodel.Millis(i*1000 + 1999)} {
			got, ok, err := s.ModelAt(at)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("no model at %d", at)
			}
			if !bytes.Equal(got.Model, rec(i).Model) {
				t.Fatalf("model at %d: got bucket %d's doc, want bucket %d's", at, got.Bucket, i)
			}
		}
	}
	if _, ok, err := s.ModelAt(999); err != nil || ok {
		t.Fatalf("ModelAt before first close = (%v, %v), want absent", ok, err)
	}
}

func TestCompactionLadderAndRetention(t *testing.T) {
	reg := obs.New()
	cfg := testCfg()
	cfg.Metrics = reg
	dir := t.TempDir()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 160 // 160s of stream: two full "weeks" plus change
	for i := int64(0); i < n; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Counter("store.compactions").Value() == 0 {
		t.Fatal("no compactions ran over a two-week stream")
	}

	recs, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	// Every retained record's model bytes must be the exact appended bytes:
	// compaction selects records, it never rewrites them.
	for _, r := range recs {
		if !bytes.Equal(r.Model, rec(r.Bucket).Model) {
			t.Fatalf("bucket %d: model bytes changed across compaction", r.Bucket)
		}
	}
	// The window's raw evidence must survive: the last WindowBuckets
	// closed buckets are what a resume replays.
	byBucket := map[int64]Record{}
	for _, r := range recs {
		byBucket[r.Bucket] = r
	}
	for i := int64(n - int64(cfg.WindowBuckets)); i < n; i++ {
		r, ok := byBucket[i]
		if !ok {
			t.Fatalf("window bucket %d not retained", i)
		}
		if len(r.Evidence) == 0 {
			t.Fatalf("window bucket %d lost its evidence", i)
		}
	}
	// Old tiers must have shed evidence (that is the point of thinning).
	for _, r := range recs {
		if r.Bucket < n-64 && len(r.Evidence) != 0 {
			t.Fatalf("ancient bucket %d still carries evidence", r.Bucket)
		}
	}
	// The directory must hold coarse tiers for the old range.
	names := dirNames(t, dir)
	if !strings.Contains(names, "week-") || !strings.Contains(names, "day-") || !strings.Contains(names, "hour-") {
		t.Fatalf("expected all ladder tiers on disk, got: %s", names)
	}
}

// dirNames returns the sorted space-joined segment file names of dir.
func dirNames(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// dirBytes snapshots every segment file's content, keyed by name.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestKillReopenIsByteDeterministic pins compaction determinism across a
// process death: a store built in one run and a store built with a
// close+reopen in the middle end up file-for-file byte-identical.
func TestKillReopenIsByteDeterministic(t *testing.T) {
	const n = 100
	oneRun := t.TempDir()
	s1, err := Open(oneRun, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := s1.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}

	twoRuns := t.TempDir()
	s2, err := Open(twoRuns, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n/2; i++ {
		if err := s2.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// "Kill": drop the handle, reopen cold, replay the crash-window bucket
	// (the last appended one) again, then continue.
	s2, err = Open(twoRuns, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(n/2 - 1); i < n; i++ {
		if err := s2.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}

	a, b := dirBytes(t, oneRun), dirBytes(t, twoRuns)
	if len(a) != len(b) {
		t.Fatalf("file sets differ:\n one run: %s\n reopened: %s", dirNames(t, oneRun), dirNames(t, twoRuns))
	}
	for name, data := range a {
		if !bytes.Equal(b[name], data) {
			t.Errorf("%s differs between one-run and reopened store", name)
		}
	}
}

func TestOpenRefusesGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testCfg()); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.WindowBuckets = 5
	if _, err := Open(dir, bad); err == nil {
		t.Fatal("reopen with different geometry accepted")
	}
}

func TestOpenReadIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Geometry(); got.BucketWidth != 1000 || got.WindowBuckets != 2 {
		t.Fatalf("geometry not recovered from sidecar: %+v", got)
	}
	if err := r.Append(rec(1)); err == nil {
		t.Fatal("append on a read-only store accepted")
	}
	if _, err := OpenRead(t.TempDir()); err == nil {
		t.Fatal("OpenRead on a non-store directory accepted")
	}
}

func TestAppendRefusals(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(rec(2)); err == nil {
		t.Fatal("rewind past sealed segments accepted")
	}
	bad := rec(20)
	bad.Range.Start, bad.Range.End = -5, 5
	if err := s.Append(bad); err == nil {
		t.Fatal("pre-epoch record accepted")
	}
	bad = rec(20)
	bad.Model = nil
	if err := s.Append(bad); err == nil {
		t.Fatal("record without model accepted")
	}
	bad = rec(20)
	bad.Scores = []Score{{Key: "z"}, {Key: "a"}}
	if err := s.Append(bad); err == nil {
		t.Fatal("unsorted scores accepted")
	}
}

func TestRewindWithinActiveGranuleReplacesTail(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-append bucket 2 (the crash window of a killed follower).
	if err := s.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Bucket != 2 {
		t.Fatalf("got %d records, want 3 ending at bucket 2", len(recs))
	}
}

func TestTrajectory(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	points, err := s.Trajectory("app2--db")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for i, p := range points {
		wantPresent := i == 2
		if p.Present != wantPresent {
			t.Errorf("point %d: present = %v, want %v", i, p.Present, wantPresent)
		}
		if (i == 2) != (p.HasScore && p.Score == 2) {
			t.Errorf("point %d: score = (%v, %v)", i, p.Score, p.HasScore)
		}
	}
}

func TestDiffAt(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := s.DiffAt(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PairsGone) != 1 || d.PairsGone[0].A != "app0" {
		t.Fatalf("pairs gone = %+v", d.PairsGone)
	}
	if len(d.PairsNew) != 1 || d.PairsNew[0].A != "app3" {
		t.Fatalf("pairs new = %+v", d.PairsNew)
	}
	if _, err := s.DiffAt(10, 4000); err == nil {
		t.Fatal("diff with unretained from-instant accepted")
	}
}

func TestLocate(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	ref, ok, err := s.Locate(5500)
	if err != nil || !ok {
		t.Fatalf("Locate = (%v, %v)", ok, err)
	}
	if !strings.HasPrefix(ref.File, "raw-") || ref.Record != 1 {
		t.Fatalf("ref = %+v", ref)
	}
	if _, ok, _ := s.Locate(999_999); ok {
		t.Fatal("Locate far in the future reported a record")
	}
}

// TestHydrateFillsWindowFromSegments pins the segment-backed resume path:
// a light checkpoint gets its window back from raw-segment evidence, and
// the hydrated checkpoint restores through the ordinary stream path.
func TestHydrateFillsWindowFromSegments(t *testing.T) {
	s, err := Open(t.TempDir(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	cp := &stream.Checkpoint{
		Version:       1,
		BucketWidth:   1000,
		WindowBuckets: 2,
		Cur:           5,
		Open:          true,
		WindowInStore: true,
	}
	if err := s.Hydrate(cp); err != nil {
		t.Fatal(err)
	}
	if cp.WindowInStore {
		t.Fatal("flag not cleared")
	}
	if len(cp.Buckets) != 2 || cp.Buckets[0].Index != 3 || cp.Buckets[1].Index != 4 {
		t.Fatalf("hydrated window = %+v, want buckets 3,4", cp.Buckets)
	}
	want := rec(3).Evidence[0]
	if !bytes.Equal(cp.Buckets[0].Entries[0], want) {
		t.Fatal("hydrated entries differ from appended evidence")
	}

	// A crash-window record newer than the checkpoint cursor is excluded.
	cp2 := &stream.Checkpoint{
		Version: 1, BucketWidth: 1000, WindowBuckets: 2,
		Cur: 4, Open: true, WindowInStore: true,
	}
	if err := s.Hydrate(cp2); err != nil {
		t.Fatal(err)
	}
	if len(cp2.Buckets) != 2 || cp2.Buckets[1].Index != 3 {
		t.Fatalf("hydrated window = %+v, want buckets 2,3", cp2.Buckets)
	}

	// Geometry mismatch refuses.
	cp3 := &stream.Checkpoint{
		Version: 1, BucketWidth: 500, WindowBuckets: 2,
		Cur: 4, Open: true, WindowInStore: true,
	}
	if err := s.Hydrate(cp3); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestCrashBetweenCompactionRenames pins the supersede recovery: if both
// the promoted coarse file and its raw source survive a crash, reopening
// keeps the coarse one and deletes the raw one.
func TestCrashBetweenCompactionRenames(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate the crash: re-create a raw file that a coarse tier already
	// covers.
	names := dirNames(t, dir)
	if !strings.Contains(names, "hour-") {
		t.Skipf("no hour tier yet in %s", names)
	}
	stale := filepath.Join(dir, segName(levelRaw, 0))
	if _, err := writeSegment(stale, levelRaw, []Record{rec(0)}); err != nil {
		t.Fatal(err)
	}
	before := dirBytes(t, dir)
	delete(before, filepath.Base(stale))
	if _, err := Open(dir, testCfg()); err != nil {
		t.Fatal(err)
	}
	after := dirBytes(t, dir)
	if _, still := after[filepath.Base(stale)]; still {
		t.Fatal("superseded raw segment survived reopen")
	}
	for name, data := range before {
		if !bytes.Equal(after[name], data) {
			t.Errorf("%s changed during supersede cleanup", name)
		}
	}
}
