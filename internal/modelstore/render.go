package modelstore

// Shared rendering for time-travel queries. cmd/depmine's query/diff/
// trajectory subcommands and cmd/depmined's per-tenant query endpoints
// print through these helpers, so the two surfaces emit byte-identical
// documents for the same store state — the CLI and the daemon are two
// doors into one contract, not two implementations.

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"logscape/internal/logmodel"
)

// Stamp renders a Millis in the canonical second-resolution UTC form used
// by the follower's stderr lines and every query surface.
func Stamp(m logmodel.Millis) string {
	return m.Time().Format("2006-01-02T15:04:05")
}

// ParseWhen parses a user-supplied instant: Unix milliseconds, RFC 3339,
// or the zone-less "2006-01-02T15:04:05" form (interpreted as UTC, the
// same rendering Stamp produces).
func ParseWhen(s string) (logmodel.Millis, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return logmodel.Millis(n), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return logmodel.FromTime(t), nil
	}
	if t, err := time.Parse("2006-01-02T15:04:05", s); err == nil {
		return logmodel.FromTime(t), nil
	}
	return 0, fmt.Errorf("cannot parse time %q (want Unix millis, RFC 3339, or 2006-01-02T15:04:05 UTC)", s)
}

// WriteDiff renders a Diff as the canonical +/- edge listing: a header
// naming both retained instants, one line per changed edge, and a
// trailing "no changes" when the models are identical.
func WriteDiff(w io.Writer, d *Diff) error {
	if _, err := fmt.Fprintf(w, "diff %s (bucket %d) .. %s (bucket %d):\n",
		Stamp(d.From.Range.End), d.From.Bucket, Stamp(d.To.Range.End), d.To.Bucket); err != nil {
		return err
	}
	n := 0
	for _, p := range d.PairsNew {
		fmt.Fprintf(w, "+ %s--%s\n", p.A, p.B)
		n++
	}
	for _, p := range d.PairsGone {
		fmt.Fprintf(w, "- %s--%s\n", p.A, p.B)
		n++
	}
	for _, p := range d.DepsNew {
		fmt.Fprintf(w, "+ %s->%s\n", p.App, p.Group)
		n++
	}
	for _, p := range d.DepsGone {
		fmt.Fprintf(w, "- %s->%s\n", p.App, p.Group)
		n++
	}
	if n == 0 {
		_, err := fmt.Fprintln(w, "no changes")
		return err
	}
	return nil
}

// WriteTrajectory renders one key's history as tab-separated lines:
// close-time, bucket index, present/absent, and the drift score ("-"
// when the record carries none).
func WriteTrajectory(w io.Writer, points []TrajPoint) error {
	for _, p := range points {
		present := "absent"
		if p.Present {
			present = "present"
		}
		score := "-"
		if p.HasScore {
			score = strconv.FormatFloat(p.Score, 'g', 6, 64)
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", Stamp(p.At), p.Bucket, present, score); err != nil {
			return err
		}
	}
	return nil
}
