package modelstore

import (
	"fmt"

	"logscape/internal/stream"
)

// Hydrate fills in the window buckets of a checkpoint that was written
// with WindowInStore (the O(1) checkpoint form a store-backed follower
// uses): the window's entries are read back from the raw segments'
// evidence instead of having been serialized into the checkpoint — and
// instead of re-tailing the source logs. After Hydrate the checkpoint is
// an ordinary one and restores through stream.Checkpoint.Restore.
//
// A checkpoint whose WindowInStore flag is unset is returned untouched.
func (s *Store) Hydrate(cp *stream.Checkpoint) error {
	if cp == nil || !cp.WindowInStore {
		return nil
	}
	if cp.BucketWidth != s.cfg.BucketWidth || cp.WindowBuckets != s.cfg.WindowBuckets {
		return fmt.Errorf("modelstore: checkpoint window geometry %dms×%d does not match store geometry %dms×%d",
			cp.BucketWidth, cp.WindowBuckets, s.cfg.BucketWidth, s.cfg.WindowBuckets)
	}
	cp.WindowInStore = false
	cp.Buckets = nil
	if cp.Cur < 0 {
		return nil // checkpointed before the first accepted entry
	}

	// The store may hold one record newer than the checkpoint: a follower
	// killed between the segment append and the checkpoint write. The
	// checkpoint's own cursor bounds the delivered window — with an open
	// current bucket, every delivered index is strictly below Cur; after a
	// flush, Cur itself was delivered.
	hi := cp.Cur
	if cp.Open {
		hi--
	}
	var window []Record
	for _, si := range s.segs {
		if si.level != levelRaw {
			continue
		}
		recs, err := s.loadSeg(si)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Bucket <= hi {
				window = append(window, rec)
			}
		}
	}
	if len(window) == 0 {
		return nil // nothing delivered yet; the window is empty
	}
	lo := window[len(window)-1].Bucket - int64(cp.WindowBuckets) + 1
	for _, rec := range window {
		if rec.Bucket < lo {
			continue
		}
		if len(rec.Evidence) == 0 {
			return fmt.Errorf("modelstore: window bucket %d has no evidence in the store (compacted too early?)", rec.Bucket)
		}
		cp.Buckets = append(cp.Buckets, stream.CheckpointBucket{
			Index:   rec.Bucket,
			Entries: rec.Evidence,
		})
	}
	return nil
}
