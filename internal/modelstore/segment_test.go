package modelstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"logscape/internal/logmodel"
)

// testRecord builds a record with all fields populated.
func testRecord(bucket int64, model string) Record {
	start := logmodel.Millis(bucket * 1000)
	return Record{
		Bucket: bucket,
		Range:  logmodel.TimeRange{Start: start, End: start + 1000},
		Model:  []byte(model),
		Scores: []Score{{Key: "a--b", Value: 1.5}, {Key: "c--d", Value: -0.25}},
		Evidence: [][]byte{
			logmodel.AppendEntry(nil, logmodel.Entry{Time: start, Source: "app", Host: "h1", User: "u", Message: "hello"}),
			logmodel.AppendEntry(nil, logmodel.Entry{Time: start + 1, Source: "db", Host: "h2", Severity: logmodel.SevWarn, Message: "bye"}),
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	recs := []Record{
		testRecord(0, `{"technique":"l1"}`+"\n"),
		testRecord(3, `{"technique":"l1","pairs":[{"a":"x","b":"y"}]}`+"\n"),
		{Bucket: 7, Range: logmodel.TimeRange{Start: 7000, End: 8000}, Model: []byte("m")},
	}
	path := filepath.Join(t.TempDir(), "raw-0.seg")
	if _, err := writeSegment(path, levelRaw, recs); err != nil {
		t.Fatal(err)
	}
	lv, got, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if lv != levelRaw {
		t.Fatalf("level = %d, want %d", lv, levelRaw)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestSegmentRoundTripIsByteStable(t *testing.T) {
	recs := []Record{testRecord(1, "doc1\n"), testRecord(2, "doc2\n")}
	img := encodeSegment(levelHour, recs)
	lv, got, err := decodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	img2 := encodeSegment(lv, got)
	if !bytes.Equal(img, img2) {
		t.Fatal("decode→re-encode changed the byte image")
	}
}

// TestSegmentRefusal pins the corruption policy: a damaged or truncated
// segment is refused outright, never partially read — tmp+rename writes
// mean a verified whole file is the only thing a reader should ever trust.
func TestSegmentRefusal(t *testing.T) {
	good := encodeSegment(levelRaw, []Record{testRecord(0, "doc\n"), testRecord(1, "doc2\n")})
	// Flip one byte inside the first record's payload: the CRC must catch it.
	flipped := append([]byte{}, good...)
	flipped[20] ^= 0x40
	// Oversized length prefix: must refuse before allocating.
	huge := append([]byte{}, good[:6]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", []byte{}},
		{"bad magic", append([]byte("NOPE"), good[4:]...)},
		{"bad version", append(append([]byte(segMagic), 99), good[5:]...)},
		{"bad level", append(append([]byte(segMagic), formatVersion, 42), good[6:]...)},
		{"header only truncated", good[:5]},
		{"mid frame truncated", good[:len(good)/2]},
		{"one byte short", good[:len(good)-1]},
		{"trailing garbage", append(append([]byte{}, good...), 1, 2, 3)},
		{"payload bit flip", flipped},
		{"huge length prefix", huge},
	}
	for _, tc := range cases {
		if _, _, err := decodeSegment(tc.data); err == nil {
			t.Errorf("%s: decode succeeded, want refusal", tc.name)
		}
	}
}

func TestSegmentRefusesUnsortedBucketsAndScores(t *testing.T) {
	// Buckets out of order across records.
	img := encodeSegment(levelRaw, []Record{testRecord(5, "a\n"), testRecord(3, "b\n")})
	if _, _, err := decodeSegment(img); err == nil {
		t.Error("out-of-order buckets accepted")
	}
	// Scores out of order within a record.
	r := testRecord(0, "a\n")
	r.Scores = []Score{{Key: "z", Value: 1}, {Key: "a", Value: 2}}
	img = encodeSegment(levelRaw, []Record{r})
	if _, _, err := decodeSegment(img); err == nil {
		t.Error("out-of-order scores accepted")
	}
}

func TestReadSegmentWrapsPathInError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "raw-00000000000000000000.seg")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := readSegment(path)
	if err == nil {
		t.Fatal("garbage file accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte(path)) {
		t.Fatalf("error %q does not name the file", err)
	}
}
