package hospital

// Name pools for the simulated HUG environment. The names are flavor only,
// but their *structure* matters to the experiments: seven service-group ids
// are legacy project codenames that collide with patient surnames
// (reproducing the "a patient having the same name as a given service id"
// coincidence false positives of §4.8), and three services exist in an old
// and a new version (UPSRV/UPSRV2 style) to reproduce the wrong-name false
// negatives.

// guiAppNames are the interactive client applications that drive user
// sessions.
var guiAppNames = []string{
	"DPIMain",
	"DPIFormidoc",
	"DPIOrders",
	"DPIAgenda",
	"DPIViewer",
	"AdmissionDesk",
	"BillingStation",
	"WardBoard",
	"PharmaDesk",
	"TriageConsole",
}

// serviceAppNames are middle-tier and backend applications; most own one or
// two service-directory groups.
var serviceAppNames = []string{
	"DPIPublication",
	"DPINotification",
	"LaboResults",
	"LaboOrders",
	"RadiologyRIS",
	"RadioImages",
	"PatientIndex",
	"PatientAdmin",
	"DocumentStore",
	"FormEngine",
	"OrderRouter",
	"PharmaStock",
	"PharmaInteraction",
	"VitalSignsHub",
	"ICUStream",
	"EpisodeManager",
	"CareplanService",
	"TerminologyServer",
	"UserProvisioning",
	"AccessControl",
	"AuditTrail",
	"BillingEngine",
	"TariffService",
	"InsuranceGateway",
	"HL7Broker",
	"DicomBridge",
	"ReportGenerator",
	"StatisticsService",
	"AppointmentBook",
	"ResourcePlanner",
	"TransportDispatch",
	"KitchenOrders",
	"SterileSupply",
	"BloodBank",
	"PathologyLab",
	"MicrobiologyLab",
	"GeneticsLab",
	"ArchiveService",
	"ConsentRegistry",
	"AlertEngine",
}

// weekdayOnlyGUI marks interactive applications whose desks are closed on
// weekends; their dependencies are not exercised on Saturday and Sunday.
var weekdayOnlyGUI = map[string]bool{
	"AdmissionDesk":  true,
	"BillingStation": true,
}

// batchAppNames are autonomous system applications: they log but own no
// directory entries and drive no sessions.
var batchAppNames = []string{
	"NightlyArchiver",
	"HL7Gateway",
	"BackupAgent",
	"StatsCollector",
}

// legacyGroupIDs are the seven service-group ids that double as patient
// surnames (legacy project codenames). Their owners are assigned during
// topology generation.
var legacyGroupIDs = []string{
	"MARTIN", "FAVRE", "ROCHAT", "BONNET", "MERCIER", "GIRARD", "MOREL",
}

// versionedGroupBases are the three services that exist in an old and a new
// version; the old id is <base>, the new one <base>2. Three caller
// applications log the old id while actually invoking the new version
// (§4.8: "the service directory id UPSRV is used instead of the newer
// version of the same service UPSRV2").
var versionedGroupBases = []string{"UPSRV", "LABQRY", "IMGSTORE"}

// patientSurnames is the surname pool for simulated clinical free text. It
// deliberately contains the legacy group ids.
var patientSurnames = []string{
	"ABATE", "AEBY", "BAUMANN", "BERGER", "BIANCHI", "BLANC", "BRUNNER",
	"CATTANEO", "CHEVALLEY", "CONTI", "CORTHAY", "DA-SILVA", "DELACROIX",
	"DUBOIS", "DUPONT", "DURAND", "EGGER", "FERREIRA", "FONTANA",
	"GARCIA", "GAUTHIER", "GONZALEZ", "GRECO", "GUEX", "HOFER", "HUBER",
	"JACCARD", "JOYE", "KELLER", "KOVACS", "KUNZ", "LAMBERT", "LEROY",
	"LOPEZ", "LUTHI", "MAILLARD", "MARQUES", "MEIER", "MEYER", "MONNEY",
	"MONNIER", "MULLER", "NGUYEN", "OLIVEIRA", "PEREIRA", "PERRET",
	"PITTET", "RAMEL", "RIBEIRO", "RICHARD", "RODRIGUES", "ROSSI",
	"ROUX", "SANTOS", "SCHMID", "SCHNEIDER", "SILVA", "STEINER",
	"TANNER", "THORENS", "VAUCHER", "VOGEL", "WEBER", "WYSS", "ZBINDEN",
	// Legacy codename collisions:
	"MARTIN", "FAVRE", "ROCHAT", "BONNET", "MERCIER", "GIRARD", "MOREL",
}

// firstNames is the given-name pool for simulated clinical free text.
var firstNames = []string{
	"Jean", "Marie", "Pierre", "Anne", "Luc", "Claire", "Paul", "Eva",
	"Marc", "Julie", "Nicolas", "Sophie", "David", "Laura", "Thomas",
	"Nina", "Hugo", "Emma", "Louis", "Alice", "Noah", "Lea", "Gabriel",
	"Chloe", "Arthur", "Zoe", "Nathan", "Ines", "Samuel", "Jade",
}

// serviceVerbs is the pool from which service function names are composed.
var serviceVerbs = []string{
	"get", "put", "list", "find", "notify", "publish", "subscribe",
	"validate", "create", "update", "archive", "merge", "lock", "release",
	"query", "submit",
}

// serviceNouns is the noun pool for service function names.
var serviceNouns = []string{
	"Record", "Document", "Order", "Result", "Patient", "Episode",
	"Report", "Image", "Appointment", "Alert", "Form", "Consent",
	"Stock", "Tariff", "Message", "Plan",
}

// noiseMessages are background log messages with no service citations.
var noiseMessages = []string{
	"heartbeat ok",
	"cache refresh completed",
	"connection pool status: idle=%d active=%d",
	"queue depth %d",
	"gc cycle finished in %d ms",
	"configuration reloaded",
	"scheduled job completed in %d ms",
	"watchdog ping",
	"session cache evicted %d entries",
	"license check ok",
	"replication lag %d ms",
	"index compaction finished",
}
