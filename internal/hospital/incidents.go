package hospital

// Scripted incidents: config-driven operational events injected into the
// simulated week at known times, so the drift detector (internal/drift)
// has ground-truth change points to be scored against. Four kinds cover
// the paper's "moving landscape" motivations:
//
//   - outage: an application goes dark — its own logs stop, its callers
//     circuit-break (no invocation logs toward its groups), and its
//     outgoing calls cease, cascading the silence to traffic it carried;
//   - migration: an application is cut over to a new host — a short
//     outage while it moves, then the same log stream from NewHost;
//   - failover: a service group fails over to a slow replica — served
//     calls take ~3× longer and callers log a retry invocation, shifting
//     the dependency's citation-delay distribution without killing it;
//   - rollout: a new dependency is rolled out gradually — a caller starts
//     invoking a group it never used, ramping linearly to full rate.
//
// An empty incident schedule leaves the generated stream byte-identical
// to a simulator without incident support: every hook below is guarded so
// it neither draws randomness nor alters behavior unless incidents are
// configured.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"logscape/internal/logmodel"
)

// IncidentKind names a scripted incident type.
type IncidentKind string

// The scripted incident kinds.
const (
	IncidentOutage    IncidentKind = "outage"
	IncidentMigration IncidentKind = "migration"
	IncidentFailover  IncidentKind = "failover"
	IncidentRollout   IncidentKind = "rollout"
)

// Incident is one scripted operational event. Which fields apply depends
// on Kind: outages and migrations name an App, failovers and rollouts a
// Group (rollouts also the Caller).
type Incident struct {
	Kind IncidentKind `json:"kind"`
	// At is the incident start; Duration its length (for a migration, the
	// cutover window during which the application is down).
	At       logmodel.Millis `json:"at"`
	Duration logmodel.Millis `json:"duration,omitempty"`
	// App is the affected application (outage, migration).
	App string `json:"app,omitempty"`
	// Caller and Group identify the affected dependency (rollout) or the
	// failed-over group (failover).
	Caller string `json:"caller,omitempty"`
	Group  string `json:"group,omitempty"`
	// NewHost is the application's host after a migration cutover.
	NewHost string `json:"new_host,omitempty"`
	// Rate is the rollout's mean invocations per hour at full ramp; Ramp
	// is the length of the linear ramp from zero to Rate.
	Rate float64         `json:"rate,omitempty"`
	Ramp logmodel.Millis `json:"ramp,omitempty"`
}

// activeAt reports whether t falls inside [At, At+Duration).
func (i *Incident) activeAt(t logmodel.Millis) bool {
	return t >= i.At && t < i.At+i.Duration
}

// appDown reports whether the named application is dark at t: inside an
// outage, or inside a migration cutover.
func (s *Simulator) appDown(name string, t logmodel.Millis) bool {
	for i := range s.cfg.Incidents {
		inc := &s.cfg.Incidents[i]
		if (inc.Kind == IncidentOutage || inc.Kind == IncidentMigration) &&
			inc.App == name && inc.activeAt(t) {
			return true
		}
	}
	return false
}

// groupDown reports whether the group's owning application is dark at t.
func (s *Simulator) groupDown(id string, t logmodel.Millis) bool {
	g := s.topo.Group(id)
	if g == nil {
		return false
	}
	return s.appDown(g.Owner, t)
}

// failoverActive reports whether the group is running on its slow replica
// at t.
func (s *Simulator) failoverActive(id string, t logmodel.Millis) bool {
	for i := range s.cfg.Incidents {
		inc := &s.cfg.Incidents[i]
		if inc.Kind == IncidentFailover && inc.Group == id && inc.activeAt(t) {
			return true
		}
	}
	return false
}

// hostAt applies migration host overrides: once an application's cutover
// has started, its server-side logs come from the new host. Client hosts
// (GUI sessions) are never overridden.
func (s *Simulator) hostAt(app *App, host string, t logmodel.Millis) string {
	if host != app.Host {
		return host
	}
	for i := range s.cfg.Incidents {
		inc := &s.cfg.Incidents[i]
		if inc.Kind == IncidentMigration && inc.App == app.Name &&
			inc.NewHost != "" && t >= inc.At {
			return inc.NewHost
		}
	}
	return host
}

// generateIncidentTraffic emits the extra traffic scripted incidents
// introduce: the gradually ramping invocations of a rollout's new
// dependency. Called once per generated day, after the organic traffic.
func (s *Simulator) generateIncidentTraffic(rng *rand.Rand, r logmodel.TimeRange,
	emit emitFunc, stats *DayStats) {

	for i := range s.cfg.Incidents {
		inc := &s.cfg.Incidents[i]
		if inc.Kind != IncidentRollout {
			continue
		}
		caller := s.topo.App(inc.Caller)
		group := s.topo.Group(inc.Group)
		if caller == nil || group == nil || !(inc.Rate > 0) {
			continue
		}
		rate := inc.Rate
		if rate > 10000 {
			rate = 10000 // bound the volume against hostile schedules
		}
		edge := &Edge{Caller: inc.Caller, Group: inc.Group, Weight: 1, Logged: true}
		for h := 0; h < 24; h++ {
			hrStart := r.Start + logmodel.Millis(h)*logmodel.MillisPerHour
			mid := hrStart + logmodel.MillisPerHour/2
			if !inc.activeAt(mid) {
				continue
			}
			frac := 1.0
			if inc.Ramp > 0 && mid < inc.At+inc.Ramp {
				frac = float64(mid-inc.At) / float64(inc.Ramp)
			}
			n := poisson(rng, rate*frac)
			for j := 0; j < n; j++ {
				t := hrStart + logmodel.Millis(rng.Int63n(int64(logmodel.MillisPerHour)))
				host, user := caller.Host, ""
				if caller.Kind == KindGUI {
					host = clientHost(rng.Intn(s.cfg.ClientHosts))
					user = userName(rng.Intn(s.cfg.Users))
				}
				s.simulateCall(rng, edge, t, caller, host, user, 1, emit, stats)
			}
		}
	}
}

// TruthPoint is one ground-truth change point implied by the incident
// schedule: at time At, the dependencies named by Keys undergo a change of
// the given kind ("birth", "death" or "delay-shift", matching
// drift.ChangePoint kinds). A detection alert matches the truth point if
// its kind and key agree and it fires within the scoring window after At.
type TruthPoint struct {
	At       logmodel.Millis `json:"at"`
	Kind     string          `json:"kind"`
	Incident IncidentKind    `json:"incident"`
	Keys     []string        `json:"keys"`
}

// citedID returns the directory id an invocation of e cites in logs — the
// real group unless the developer hard-coded a similar wrong id (§4.8).
func citedID(e *Edge) string {
	if e.WrongID != "" {
		return e.WrongID
	}
	return e.Group
}

// depKeysTouching returns the drift keys of every logged, non-rare
// dependency whose traffic stops when the named application is dark: its
// outgoing edges and every edge into the groups it owns.
func (s *Simulator) depKeysTouching(app string) []string {
	set := make(map[string]bool)
	for i := range s.topo.Edges {
		e := &s.topo.Edges[i]
		if e.Rare || !e.Logged {
			continue
		}
		g := s.topo.Group(e.Group)
		if e.Caller == app || (g != nil && g.Owner == app) {
			set[e.Caller+"->"+citedID(e)] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// groupDepKeys returns the drift keys of the logged, non-rare edges into
// one group.
func (s *Simulator) groupDepKeys(id string) []string {
	set := make(map[string]bool)
	for i := range s.topo.Edges {
		e := &s.topo.Edges[i]
		if e.Rare || !e.Logged || e.Group != id {
			continue
		}
		set[e.Caller+"->"+citedID(e)] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TruthPoints derives the ground-truth change points of the configured
// incident schedule, in time order.
func (s *Simulator) TruthPoints() []TruthPoint {
	var pts []TruthPoint
	for i := range s.cfg.Incidents {
		inc := &s.cfg.Incidents[i]
		switch inc.Kind {
		case IncidentOutage, IncidentMigration:
			keys := s.depKeysTouching(inc.App)
			if len(keys) == 0 {
				continue
			}
			pts = append(pts,
				TruthPoint{At: inc.At, Kind: "death", Incident: inc.Kind, Keys: keys},
				TruthPoint{At: inc.At + inc.Duration, Kind: "birth", Incident: inc.Kind, Keys: keys})
		case IncidentFailover:
			keys := s.groupDepKeys(inc.Group)
			if len(keys) == 0 {
				continue
			}
			// Both edges of the failover are real change points: delays
			// shift up when the slow replica takes over and back down when
			// the primary returns.
			pts = append(pts,
				TruthPoint{At: inc.At, Kind: "delay-shift", Incident: inc.Kind, Keys: keys},
				TruthPoint{At: inc.At + inc.Duration, Kind: "delay-shift", Incident: inc.Kind, Keys: keys})
		case IncidentRollout:
			if s.topo.App(inc.Caller) == nil || s.topo.Group(inc.Group) == nil {
				continue
			}
			pts = append(pts, TruthPoint{
				At: inc.At, Kind: "birth", Incident: inc.Kind,
				Keys: []string{inc.Caller + "->" + inc.Group},
			})
		}
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].At < pts[b].At })
	return pts
}

// DefaultIncidentSchedule returns the canonical scripted-incident corpus
// for a topology: two quiet lead-in days for the detector to learn the
// landscape, then one incident of each kind over days 2–4, targeting the
// busiest eligible applications and groups so every truth point concerns
// dependencies dense enough to be confirmed by the persistence filter.
// The failover and rollout target distinct groups — otherwise the
// rollout's synthetic dependency would suffer the failover's delay shift
// without appearing in its truth keys. Deterministic per topology.
func DefaultIncidentSchedule(topo *Topology, start logmodel.Millis) []Incident {
	day := func(d int, hour int) logmodel.Millis {
		return start + logmodel.Millis(d)*logmodel.MillisPerDay +
			logmodel.Millis(hour)*logmodel.MillisPerHour
	}
	apps := busiestServiceApps(topo)
	groups := busiestGroups(topo)
	var schedule []Incident
	if len(apps) > 0 {
		schedule = append(schedule, Incident{
			Kind: IncidentOutage, App: apps[0],
			At: day(2, 9), Duration: 6 * logmodel.MillisPerHour,
		})
	}
	failoverGroup := pickFailoverGroup(topo, groups, apps)
	if failoverGroup != "" {
		schedule = append(schedule, Incident{
			Kind: IncidentFailover, Group: failoverGroup,
			At: day(3, 8), Duration: 10 * logmodel.MillisPerHour,
		})
	}
	if caller, g := pickRolloutEdge(topo, apps, failoverGroup); g != "" {
		// A rollout is a permanent adoption: the duration outlives any
		// simulated period, so the new dependency never scripts a death.
		schedule = append(schedule, Incident{
			Kind: IncidentRollout, Caller: caller, Group: g,
			At: day(3, 6), Duration: 365 * logmodel.MillisPerDay,
			Rate: 60, Ramp: logmodel.MillisPerHour,
		})
	}
	if len(apps) > 1 {
		schedule = append(schedule, Incident{
			Kind: IncidentMigration, App: apps[1],
			At: day(4, 10), Duration: 4 * logmodel.MillisPerHour,
			NewHost: "srv-migrated-01",
		})
	}
	return schedule
}

// busiestServiceApps ranks service applications by the total logged,
// non-rare edge weight touching them (in or out) — the apps whose outage
// moves the most model mass.
func busiestServiceApps(topo *Topology) []string {
	weight := make(map[string]float64)
	for i := range topo.Edges {
		e := &topo.Edges[i]
		if e.Rare || !e.Logged {
			continue
		}
		if g := topo.Group(e.Group); g != nil {
			weight[g.Owner] += e.Weight
		}
		weight[e.Caller] += e.Weight
	}
	var names []string
	for i := range topo.Apps {
		a := &topo.Apps[i]
		if a.Kind == KindService && weight[a.Name] > 0 {
			names = append(names, a.Name)
		}
	}
	sort.Slice(names, func(a, b int) bool {
		if weight[names[a]] != weight[names[b]] { //lint:allow floateq exact tie grouping of deterministic sums; ties break by name below
			return weight[names[a]] > weight[names[b]]
		}
		return names[a] < names[b]
	})
	return names
}

// busiestGroups ranks groups by inbound logged, non-rare, correctly-cited
// edge weight.
func busiestGroups(topo *Topology) []string {
	weight := make(map[string]float64)
	for i := range topo.Edges {
		e := &topo.Edges[i]
		if e.Rare || !e.Logged || e.WrongID != "" {
			continue
		}
		weight[e.Group] += e.Weight
	}
	var ids []string
	for i := range topo.Groups {
		if weight[topo.Groups[i].ID] > 0 {
			ids = append(ids, topo.Groups[i].ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if weight[ids[a]] != weight[ids[b]] { //lint:allow floateq exact tie grouping of deterministic sums; ties break by id below
			return weight[ids[a]] > weight[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// pickFailoverGroup returns the busiest group not owned by the outage or
// migration target, so the week's incidents do not overlap on one app.
func pickFailoverGroup(topo *Topology, groups, apps []string) string {
	excluded := make(map[string]bool)
	for i, a := range apps {
		if i < 2 {
			excluded[a] = true
		}
	}
	for _, id := range groups {
		if g := topo.Group(id); g != nil && !excluded[g.Owner] {
			return id
		}
	}
	return ""
}

// pickRolloutEdge returns a (caller, group) pair with no existing edge:
// the busiest service app that does not call the busiest group it could.
// The avoid group (the failover target) is never picked, so the rollout's
// traffic is untouched by the failover's latency shift.
func pickRolloutEdge(topo *Topology, apps []string, avoid string) (string, string) {
	groups := busiestGroups(topo)
	// The outage and migration targets (the first two apps) are off limits
	// on both sides of the edge: the rollout is supposed to be the ONLY
	// change point on its key, but an edge from or into a scripted-down app
	// dies with it — a real change the truth file does not attribute to the
	// rollout.
	excluded := make(map[string]bool)
	for i := 0; i < len(apps) && i < 2; i++ {
		excluded[apps[i]] = true
	}
	for _, caller := range apps {
		if excluded[caller] {
			continue
		}
		calls := make(map[string]bool)
		for _, e := range topo.EdgesOf(caller) {
			calls[e.Group] = true
		}
		for _, id := range groups {
			g := topo.Group(id)
			if g == nil || g.Owner == caller || excluded[g.Owner] || calls[id] || id == avoid {
				continue
			}
			return caller, id
		}
	}
	return "", ""
}

// WriteTruthPoints records the ground-truth change-point file: one JSON
// object per line, in time order.
func WriteTruthPoints(w io.Writer, pts []TruthPoint) error {
	for _, p := range pts {
		data, err := json.Marshal(p)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return err
		}
	}
	return nil
}

// ReadTruthPoints loads a change-point file written by WriteTruthPoints.
func ReadTruthPoints(r io.Reader) ([]TruthPoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var pts []TruthPoint
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var p TruthPoint
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("hospital: truth points: %w", err)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
