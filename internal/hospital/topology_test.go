package hospital

import (
	"reflect"
	"testing"

	"logscape/internal/directory"
)

func testTopology(t *testing.T) *Topology {
	t.Helper()
	return GenerateTopology(DefaultTopologyConfig(), 1)
}

func TestTopologyCardinalities(t *testing.T) {
	topo := testTopology(t)
	if got := len(topo.Apps); got != 54 {
		t.Errorf("apps = %d, want 54 (paper reference model)", got)
	}
	if got := len(topo.Groups); got != 47 {
		t.Errorf("groups = %d, want 47", got)
	}
	if got := len(topo.Edges); got != 177 {
		t.Errorf("edges = %d, want 177", got)
	}
	appPairs := topo.TrueAppPairs()
	// The paper has 178 dependent app pairs for 177 app→service deps; ours
	// must land in the same neighborhood (ownership is not exactly
	// one-to-one).
	if n := len(appPairs); n < 150 || n > 178 {
		t.Errorf("app pairs = %d, want ≈ 170", n)
	}
	if n := len(topo.TrueAppServicePairs()); n != 177 {
		t.Errorf("app-service pairs = %d", n)
	}
}

func TestTopologyDeterministic(t *testing.T) {
	a := GenerateTopology(DefaultTopologyConfig(), 42)
	b := GenerateTopology(DefaultTopologyConfig(), 42)
	if !reflect.DeepEqual(a.Apps, b.Apps) {
		t.Error("apps differ between runs with the same seed")
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Error("edges differ between runs with the same seed")
	}
	c := GenerateTopology(DefaultTopologyConfig(), 43)
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Error("different seeds produced identical edges")
	}
}

func TestTopologyEdgeValidity(t *testing.T) {
	topo := testTopology(t)
	seen := make(map[AppServicePair]bool)
	for _, e := range topo.Edges {
		if topo.App(e.Caller) == nil {
			t.Fatalf("edge caller %q is not an app", e.Caller)
		}
		g := topo.Group(e.Group)
		if g == nil {
			t.Fatalf("edge group %q does not exist", e.Group)
		}
		if g.Owner == e.Caller {
			t.Errorf("self edge: %s → %s", e.Caller, e.Group)
		}
		p := AppServicePair{App: e.Caller, Group: e.Group}
		if seen[p] {
			t.Errorf("duplicate edge %v", p)
		}
		seen[p] = true
		if e.Weight <= 0 {
			t.Errorf("edge %v has weight %v", p, e.Weight)
		}
	}
}

func TestTopologyPhenomenaCardinalities(t *testing.T) {
	topo := testTopology(t)
	ph := topo.Phenomena
	if got := len(ph.RareEdges); got != 6 {
		t.Errorf("rare edges = %d, want 6 (§4.8)", got)
	}
	if got := len(ph.UnloggedEdges); got != 7 {
		t.Errorf("unlogged edges = %d, want 7", got)
	}
	if got := len(ph.WrongNameEdges); got != 3 {
		t.Errorf("wrong-name edges = %d, want 3", got)
	}
	if got := len(ph.SimilarIDPairs); got != 5 {
		t.Errorf("similar-id pairs = %d, want 5", got)
	}
	if got := len(ph.CoincidencePairs); got != 7 {
		t.Errorf("coincidence pairs = %d, want 7", got)
	}
	if got := len(ph.StackTracePairs); got != 5 {
		t.Errorf("stack-trace pairs = %d, want 5", got)
	}
	if got := len(ph.InvertedApps); got != 2 {
		t.Errorf("inverted apps = %d, want 2", got)
	}
	if got := len(ph.StoppableApps); got != 22 {
		t.Errorf("stoppable apps = %d, want 22 (24 total − 2 surviving)", got)
	}
}

func TestPhenomenaConsistency(t *testing.T) {
	topo := testTopology(t)
	ph := topo.Phenomena
	truth := topo.TrueAppServicePairs()
	// Rare, unlogged and wrong-name pairs must be real dependencies.
	for _, p := range ph.RareEdges {
		if !truth[p] {
			t.Errorf("rare edge %v not in ground truth", p)
		}
	}
	for _, p := range ph.UnloggedEdges {
		if !truth[p] {
			t.Errorf("unlogged edge %v not in ground truth", p)
		}
	}
	for p, wrong := range ph.WrongNameEdges {
		if !truth[p] {
			t.Errorf("wrong-name edge %v not in ground truth", p)
		}
		if topo.Group(wrong) == nil {
			t.Errorf("wrong id %q does not exist in directory", wrong)
		}
	}
	// Error-citation pairs must NOT be real dependencies (they are the
	// false positives of figure 8).
	for _, p := range ph.SimilarIDPairs {
		if truth[p] {
			t.Errorf("similar-id pair %v is a real dependency", p)
		}
	}
	for _, p := range ph.CoincidencePairs {
		if truth[p] {
			t.Errorf("coincidence pair %v is a real dependency", p)
		}
	}
	for _, p := range ph.StackTracePairs {
		if truth[p] {
			t.Errorf("stack-trace pair %v is a real dependency", p)
		}
	}
	// Inverted apps must cite their own group in an unstoppable style.
	for _, name := range ph.InvertedApps {
		a := topo.App(name)
		if a.ServingStyle < numStoppableServingStyles {
			t.Errorf("inverted app %s has stoppable style %d", name, a.ServingStyle)
		}
		if len(topo.GroupsOwnedBy(name)) == 0 {
			t.Errorf("inverted app %s owns no group", name)
		}
	}
	for _, name := range ph.StoppableApps {
		a := topo.App(name)
		if a.ServingStyle < 0 || a.ServingStyle >= numStoppableServingStyles {
			t.Errorf("stoppable app %s has style %d", name, a.ServingStyle)
		}
	}
}

func TestTopologyDirectory(t *testing.T) {
	topo := testTopology(t)
	d := topo.Directory()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 47 {
		t.Errorf("directory groups = %d", len(d.Groups))
	}
	// Versioned ids must both exist.
	for _, base := range versionedGroupBases {
		if d.Lookup(base) == nil || d.Lookup(base+"2") == nil {
			t.Errorf("versioned pair %s/%s2 missing", base, base)
		}
	}
	// Legacy codenames must exist and be in the surname pool.
	for _, id := range legacyGroupIDs {
		if d.Lookup(id) == nil {
			t.Errorf("legacy group %s missing", id)
		}
		found := false
		for _, s := range patientSurnames {
			if s == id {
				found = true
			}
		}
		if !found {
			t.Errorf("legacy id %s not in surname pool", id)
		}
	}
}

func TestFigure1PairExists(t *testing.T) {
	topo := testTopology(t)
	if !topo.hasEdge(AppServicePair{App: "DPIFormidoc", Group: "DPIPUBLICATION"}) {
		t.Fatal("flavor edge DPIFormidoc → DPIPUBLICATION missing")
	}
	if !topo.TrueAppPairs()[MakePair("DPIFormidoc", "DPIPublication")] {
		t.Error("app pair (DPIFormidoc, DPIPublication) not in reference model")
	}
}

func TestMakePair(t *testing.T) {
	if p := MakePair("B", "A"); p.A != "A" || p.B != "B" {
		t.Errorf("MakePair = %+v", p)
	}
	if MakePair("A", "B") != MakePair("B", "A") {
		t.Error("MakePair not symmetric")
	}
}

func TestAppKindString(t *testing.T) {
	if KindGUI.String() != "gui" || KindService.String() != "service" || KindBatch.String() != "batch" {
		t.Error("kind strings")
	}
	if AppKind(9).String() != "kind(9)" {
		t.Error("unknown kind string")
	}
}

func TestStopPatternsCoverStoppableStyles(t *testing.T) {
	stops := CanonicalStopPatterns()
	if len(stops) != 10 {
		t.Fatalf("stop patterns = %d, want 10 (§4.8)", len(stops))
	}
	rng := newTestRand()
	matchAny := func(msg string) bool {
		for _, p := range stops {
			if p.Matches("AnyApp", msg) {
				return true
			}
		}
		return false
	}
	for style := 0; style < numStoppableServingStyles; style++ {
		msg := servingMessage(style, "SOMEGROUP", "getRecord", rng)
		if !matchAny(msg) {
			t.Errorf("style %d message %q not covered by stop patterns", style, msg)
		}
	}
	for style := numStoppableServingStyles; style < numStoppableServingStyles+numUnstoppableServingStyles; style++ {
		msg := servingMessage(style, "SOMEGROUP", "getRecord", rng)
		if matchAny(msg) {
			t.Errorf("style %d message %q unexpectedly covered", style, msg)
		}
	}
	// Citation-free serving logs are irrelevant to stop patterns but must
	// not cite the group.
	msg := servingMessage(-1, "SOMEGROUP", "getRecord", rng)
	if directory.StopPattern(stops[0]).Matches("X", msg) {
		t.Errorf("style -1 message matched: %q", msg)
	}
}

func TestInvokeMessagesCite(t *testing.T) {
	rng := newTestRand()
	for style := 0; style < numInvokeStyles; style++ {
		msg := invokeMessage(style, "MYGROUP", "getRecord", "host:8000/mygroup", rng)
		citesID := contains(msg, "MYGROUP")
		citesURL := contains(msg, "host:8000/mygroup")
		if !citesID && !citesURL {
			t.Errorf("style %d message %q cites nothing", style, msg)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
