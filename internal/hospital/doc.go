// Package hospital simulates the Geneva University Hospitals environment of
// the paper: a topology of interactive applications, middle-tier services
// and a service directory with a known ground-truth dependency graph, and a
// workload generator that emits a realistic centralized log stream — user
// sessions with synchronous and asynchronous call trees, background noise,
// per-host clock skew, and every free-text phenomenon the paper's §4.8
// error analysis attributes results to (server-side echo logs, exception
// stack traces, patient-name/service-id coincidences, wrong and similar
// directory ids, unlogged invocations, rarely-used services).
//
// The simulator replaces the 56.8 million proprietary production log
// entries of the case study; its ground-truth topology plays the role of
// the expert-built reference model.
//
// See DESIGN.md §3 (System inventory).
package hospital
