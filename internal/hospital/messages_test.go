package hospital

import (
	"strings"
	"testing"

	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/textproc"
)

func TestInvokeMessagesWordBounded(t *testing.T) {
	// Every invocation style must cite the group id word-bounded (or the
	// URL fragment), so the citation scanner finds it reliably.
	rng := newTestRand()
	for style := 0; style < numInvokeStyles; style++ {
		msg := invokeMessage(style, "UPSRV", "lookup", "host:8001/upsrv", rng)
		if !textproc.HasWordBounded(msg, "UPSRV") && !strings.Contains(msg, "host:8001/upsrv") {
			t.Errorf("style %d: %q has no bounded citation", style, msg)
		}
		// The id must not fuse with neighboring word characters.
		if strings.Contains(msg, "UPSRVl") || strings.Contains(msg, "lUPSRV") {
			t.Errorf("style %d: %q fuses the id", style, msg)
		}
	}
}

func TestServingMessagesCiteOwnGroup(t *testing.T) {
	rng := newTestRand()
	total := numStoppableServingStyles + numUnstoppableServingStyles
	for style := 0; style < total; style++ {
		msg := servingMessage(style, "MYGRP", "getRecord", rng)
		if !strings.Contains(msg, "MYGRP") {
			t.Errorf("style %d: %q does not cite the group", style, msg)
		}
	}
	// The citation-free variant must not.
	if msg := servingMessage(-1, "MYGRP", "getRecord", rng); strings.Contains(msg, "MYGRP") {
		t.Errorf("style -1 cites: %q", msg)
	}
}

func TestStackTraceMessageCitesBoth(t *testing.T) {
	msg := stackTraceMessage("REALGRP", "getRecord", "TRANSGRP", "host:8002/transgrp")
	if !textproc.HasWordBounded(msg, "REALGRP") {
		t.Errorf("failed group not cited: %q", msg)
	}
	if !textproc.HasWordBounded(msg, "TRANSGRP") {
		t.Errorf("transitive group not cited: %q", msg)
	}
	if !strings.Contains(msg, "host:8002/transgrp") {
		t.Errorf("URL fragment missing: %q", msg)
	}
}

func TestPatientMessagesFormat(t *testing.T) {
	rng := newTestRand()
	msg := patientMessage("MARTIN", "Jean", rng)
	if !textproc.HasWordBounded(msg, "MARTIN") {
		t.Errorf("surname not word-bounded: %q", msg)
	}
	if !strings.Contains(msg, "PID") {
		t.Errorf("no PID: %q", msg)
	}
	if m := patientIDMessage(rng); !strings.Contains(m, "PID") {
		t.Errorf("id message: %q", m)
	}
}

func TestNoiseMessagesNeverCite(t *testing.T) {
	// Background noise must not collide with any directory id or URL of a
	// generated topology.
	topo := GenerateTopology(DefaultTopologyConfig(), 51)
	scanner := directory.NewCitationScanner(topo.Directory(), nil)
	rng := newTestRand()
	for i := 0; i < 2000; i++ {
		for _, msg := range []string{noiseMessage(rng), guiActionMessage(rng), completionMessage("getRecord", rng)} {
			if c := scanner.Citations(msg); c != nil {
				t.Fatalf("noise message %q cites %v", msg, c)
			}
		}
	}
}

func TestOrganicPatientNamesNeverCite(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 52)
	scanner := directory.NewCitationScanner(topo.Directory(), nil)
	rng := newTestRand()
	for i := 0; i < 2000; i++ {
		msg := patientMessage(nonLegacySurname(rng), firstNames[rng.Intn(len(firstNames))], rng)
		if c := scanner.Citations(msg); c != nil {
			t.Fatalf("organic patient message %q cites %v", msg, c)
		}
	}
}

// TestUnloggedEdgesInvisibleToL3: the simulator must not leak citations for
// unlogged edges through any code path (the §4.8 "not logged" FNs).
func TestUnloggedEdgesInvisibleToL3(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 53)
	sim := NewSimulator(DefaultConfig(53), topo)
	m := l3.NewMiner(topo.Directory(), l3.Config{Stops: CanonicalStopPatterns()})
	for d := 0; d < 3; d++ {
		store, _ := sim.GenerateDay(d)
		deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
		for _, p := range topo.Phenomena.UnloggedEdges {
			if deps[p] {
				t.Fatalf("day %d: unlogged edge %v detected", d, p)
			}
		}
		for p := range topo.Phenomena.WrongNameEdges {
			if deps[p] {
				t.Fatalf("day %d: wrong-name edge %v detected under its true id", d, p)
			}
		}
	}
}

func TestWeekdayOnlyGUIsIdleOnWeekend(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 54)
	sim := NewSimulator(DefaultConfig(54), topo)
	store, _ := sim.GenerateDay(4) // Saturday
	counts := store.CountBySource()
	for name := range weekdayOnlyGUI {
		// Only residual background noise may remain (no sessions).
		if counts[name] > 100 {
			t.Errorf("weekday-only app %s has %d weekend logs", name, counts[name])
		}
	}
}

func TestCompanionGUIFixedAndDistinct(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 55)
	sim := NewSimulator(DefaultConfig(55), topo)
	for _, name := range guiAppNames {
		gui := topo.App(name)
		c1 := sim.companionGUI(gui, false)
		c2 := sim.companionGUI(gui, false)
		if c1 != c2 {
			t.Errorf("companion of %s not fixed", name)
		}
		if c1 == gui {
			t.Errorf("companion of %s is itself", name)
		}
		we := sim.companionGUI(gui, true)
		if weekdayOnlyGUI[we.Name] {
			t.Errorf("weekend companion of %s is a weekday-only app (%s)", name, we.Name)
		}
	}
}

func TestViewsStructure(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 56)
	sim := NewSimulator(DefaultConfig(56), topo)
	for _, name := range guiAppNames {
		views := sim.views[name]
		if len(views) == 0 {
			t.Errorf("no views for %s", name)
			continue
		}
		for _, v := range views {
			if len(v) < 2 || len(v) > 3 {
				t.Errorf("%s view size %d", name, len(v))
			}
			seen := map[*Edge]bool{}
			for _, e := range v {
				if seen[e] {
					t.Errorf("%s view has duplicate edge", name)
				}
				seen[e] = true
				if e.Rare {
					t.Errorf("%s view contains a rare edge", name)
				}
				if e.Caller != name {
					t.Errorf("%s view contains foreign edge of %s", name, e.Caller)
				}
			}
		}
	}
}

func TestWeekdaySlot(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 57)
	sim := NewSimulator(DefaultConfig(57), topo)
	// Days 0..6 are Tue..Mon: slots 0,1,2,3,-1,-1,4.
	want := []int{0, 1, 2, 3, -1, -1, 4}
	for d, w := range want {
		wd := sim.DayDate(d).Weekday()
		if got := weekdaySlot(wd); got != w {
			t.Errorf("day %d (%v): slot = %d, want %d", d, wd, got, w)
		}
	}
}
