package hospital

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"logscape/internal/logmodel"
)

// scheduleFor builds the canonical schedule of a test topology.
func scheduleFor(t *testing.T, seed int64) (*Topology, Config, []Incident) {
	t.Helper()
	topo := GenerateTopology(DefaultTopologyConfig(), seed)
	cfg := smallConfig(seed)
	schedule := DefaultIncidentSchedule(topo, cfg.Start)
	if len(schedule) == 0 {
		t.Fatal("empty default schedule")
	}
	return topo, cfg, schedule
}

// incidentOf returns the first scheduled incident of a kind.
func incidentOf(t *testing.T, schedule []Incident, kind IncidentKind) Incident {
	t.Helper()
	for _, inc := range schedule {
		if inc.Kind == kind {
			return inc
		}
	}
	t.Fatalf("no %s incident in schedule", kind)
	return Incident{}
}

func TestDefaultIncidentScheduleDeterministic(t *testing.T) {
	_, _, a := scheduleFor(t, 7)
	_, _, b := scheduleFor(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ:\n%+v\n%+v", a, b)
	}
	kinds := make(map[IncidentKind]bool)
	for _, inc := range a {
		kinds[inc.Kind] = true
	}
	for _, k := range []IncidentKind{IncidentOutage, IncidentMigration, IncidentFailover, IncidentRollout} {
		if !kinds[k] {
			t.Errorf("schedule lacks a %s incident", k)
		}
	}
}

func TestOutageSilencesApp(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	out := incidentOf(t, schedule, IncidentOutage)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	day := int((out.At - cfg.Start) / logmodel.MillisPerDay)
	store, _ := sim.GenerateDay(day)

	slack := logmodel.Millis(1000) // clock skew can move entries ±800 ms
	var before, during, after int
	for _, e := range store.Entries() {
		if e.Source != out.App {
			continue
		}
		switch {
		case e.Time < out.At-slack:
			before++
		case e.Time >= out.At+slack && e.Time < out.At+out.Duration-slack:
			during++
		case e.Time >= out.At+out.Duration+slack:
			after++
		}
	}
	if during != 0 {
		t.Errorf("%d entries from %s during its outage", during, out.App)
	}
	if before == 0 || after == 0 {
		t.Errorf("app %s not active around the outage (before=%d after=%d)", out.App, before, after)
	}
}

func TestMigrationMovesHost(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	mig := incidentOf(t, schedule, IncidentMigration)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	oldHost := topo.App(mig.App).Host
	day := int((mig.At - cfg.Start) / logmodel.MillisPerDay)
	store, _ := sim.GenerateDay(day)

	slack := logmodel.Millis(1000)
	var oldBefore, newAfter, wrongAfter, oldDuring int
	for _, e := range store.Entries() {
		if e.Source != mig.App {
			continue
		}
		switch {
		case e.Time < mig.At-slack && e.Host == oldHost:
			oldBefore++
		case e.Time >= mig.At+slack && e.Time < mig.At+mig.Duration-slack:
			oldDuring++
		case e.Time >= mig.At+mig.Duration+slack:
			if e.Host == mig.NewHost {
				newAfter++
			} else {
				wrongAfter++
			}
		}
	}
	if oldBefore == 0 || newAfter == 0 {
		t.Errorf("migration traffic missing (before=%d after=%d)", oldBefore, newAfter)
	}
	if oldDuring != 0 {
		t.Errorf("%d entries during the cutover window", oldDuring)
	}
	if wrongAfter != 0 {
		t.Errorf("%d post-cutover entries not on %s", wrongAfter, mig.NewHost)
	}
}

func TestFailoverEmitsRetries(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	fo := incidentOf(t, schedule, IncidentFailover)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	day := int((fo.At - cfg.Start) / logmodel.MillisPerDay)
	store, _ := sim.GenerateDay(day)

	retries := 0
	for _, e := range store.Entries() {
		if e.Severity == logmodel.SevWarn && e.Time >= fo.At && e.Time < fo.At+fo.Duration &&
			strings.Contains(e.Message, fo.Group) {
			retries++
		}
	}
	if retries == 0 {
		t.Errorf("no retry invocations of %s during its failover", fo.Group)
	}
}

func TestRolloutIntroducesDependency(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	ro := incidentOf(t, schedule, IncidentRollout)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	day := int((ro.At - cfg.Start) / logmodel.MillisPerDay)

	var before, after int
	for d := 0; d <= day; d++ {
		store, _ := sim.GenerateDay(d)
		for _, e := range store.Entries() {
			if e.Source != ro.Caller || !strings.Contains(e.Message, ro.Group) {
				continue
			}
			if e.Time < ro.At {
				before++
			} else {
				after++
			}
		}
	}
	if before != 0 {
		t.Errorf("%d citations of %s by %s before the rollout", before, ro.Group, ro.Caller)
	}
	if after == 0 {
		t.Errorf("no citations of %s by %s after the rollout", ro.Group, ro.Caller)
	}
}

func TestTruthPointsMatchSchedule(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	pts := sim.TruthPoints()
	if len(pts) == 0 {
		t.Fatal("no truth points")
	}
	counts := make(map[string]int)
	for i, p := range pts {
		if i > 0 && p.At < pts[i-1].At {
			t.Fatalf("truth points out of order at %d", i)
		}
		if len(p.Keys) == 0 {
			t.Fatalf("truth point %d has no keys", i)
		}
		for j, k := range p.Keys {
			if j > 0 && k <= p.Keys[j-1] {
				t.Fatalf("truth point %d keys not strictly sorted", i)
			}
		}
		counts[p.Kind]++
	}
	// Outage and migration each imply a death and a rebirth; the rollout
	// one birth; the failover a delay shift at each edge (onset and
	// recovery).
	if counts["death"] != 2 || counts["birth"] != 3 || counts["delay-shift"] != 2 {
		t.Errorf("truth kind counts = %v", counts)
	}
}

func TestTruthPointsRoundTrip(t *testing.T) {
	topo, cfg, schedule := scheduleFor(t, 7)
	cfg.Incidents = schedule
	sim := NewSimulator(cfg, topo)
	pts := sim.TruthPoints()
	var buf bytes.Buffer
	if err := WriteTruthPoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruthPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, got) {
		t.Fatalf("round trip differs:\n%+v\n%+v", pts, got)
	}
	if _, err := ReadTruthPoints(strings.NewReader("{broken")); err == nil {
		t.Error("malformed truth file accepted")
	}
}

func TestStationaryWeekIsUniform(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 7)
	cfg := smallConfig(7)
	cfg.Stationary = true
	sim := NewSimulator(cfg, topo)
	_, first := sim.GenerateDay(0)
	for d := 1; d < 7; d++ {
		_, st := sim.GenerateDay(d)
		if st.Sessions != first.Sessions {
			t.Errorf("day %d sessions = %d, day 0 = %d", d, st.Sessions, first.Sessions)
		}
		if st.Weekend {
			t.Errorf("day %d marked weekend in stationary mode", d)
		}
	}
	// Day 4 of the default start is a Saturday; stationary mode must keep
	// its volume at the weekday level.
	if time.Date(2005, 12, 10, 0, 0, 0, 0, time.UTC).Weekday() != time.Saturday {
		t.Fatal("calendar assumption broken")
	}
}

func TestIncidentHelpersNilSafe(t *testing.T) {
	topo, cfg, _ := scheduleFor(t, 7)
	cfg.Incidents = []Incident{
		{Kind: IncidentRollout, Caller: "NoSuchApp", Group: "NOGRP", At: cfg.Start, Duration: logmodel.MillisPerDay, Rate: 10},
		{Kind: IncidentOutage, App: "NoSuchApp", At: cfg.Start, Duration: logmodel.MillisPerHour},
	}
	sim := NewSimulator(cfg, topo)
	if sim.groupDown("NOGRP", cfg.Start) {
		t.Error("unknown group reported down")
	}
	if pts := sim.TruthPoints(); len(pts) != 0 {
		t.Errorf("truth points for unknown targets: %+v", pts)
	}
	// Generating a day with the hostile schedule must not panic.
	store, _ := sim.GenerateDay(0)
	if store.Len() == 0 {
		t.Fatal("empty day")
	}
}
