package hospital

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"logscape/internal/logmodel"
)

// Config parameterizes the workload generator. Volumes are calibrated to a
// 1/100-scale replica of the paper's test week (table 1: 10.3, 9.4, 9.4,
// 9.9, 3.7, 3.4, 10.7 million logs for Dec 6–12 2005); Scale rescales all
// volumes at once.
type Config struct {
	// Seed drives all randomness; the same seed reproduces the same week.
	Seed int64
	// Start is the beginning of day 0 (midnight). The default is
	// 2005-12-06T00:00Z, a Tuesday, matching table 1.
	Start logmodel.Millis
	// Days is the number of simulated days (default 7).
	Days int
	// Scale multiplies all volumes (default 1 ≙ 1/100 of HUG's volume).
	Scale float64
	// SessionsPerWeekday is the number of user sessions on a full
	// weekday at Scale 1.
	SessionsPerWeekday float64
	// BackgroundPerWeekday is the number of background (non-session) log
	// entries on a full weekday at Scale 1.
	BackgroundPerWeekday float64
	// MeanActionsPerSession is the mean number of user actions per session.
	MeanActionsPerSession float64
	// InvocationsPerAction is the mean number of service invocations each
	// user action triggers.
	InvocationsPerAction float64
	// SubCallProb is the probability that a callee follows up with one of
	// its own dependencies (transitive call), per dependency.
	SubCallProb float64
	// ServiceInvocationsPerWeekday is the expected number of autonomous
	// invocations per unit of edge weight and weekday for service→service
	// edges (scheduled jobs, push updates); it scales with the day factor.
	ServiceInvocationsPerWeekday float64
	// FailureProb is the probability that an invocation of a stack-trace
	// edge fails and logs an exception trace.
	FailureProb float64
	// CoincidenceProbWeekday/Weekend are the per-day probabilities that a
	// given patient-name/group-id coincidence pair appears.
	CoincidenceProbWeekday, CoincidenceProbWeekend float64
	// SimilarIDProbWeekday/Weekend are the per-day probabilities that a
	// spontaneous similar-id citation appears.
	SimilarIDProbWeekday, SimilarIDProbWeekend float64
	// MultiTaskProb is the probability that a user runs a second,
	// concurrently interleaved session on another client machine ("a user
	// might be active on different machines", §3.2). Merged multi-machine
	// sessions are a major source of spurious co-occurrence for approach
	// L2 — exactly the noise its timeout parameter prunes.
	MultiTaskProb float64
	// Users and ClientHosts size the user and client-machine pools.
	Users, ClientHosts int
	// Incidents is the scripted-incident schedule (see incidents.go). An
	// empty schedule leaves the generated stream byte-identical to a
	// simulator without incident support.
	Incidents []Incident
	// Stationary freezes the weekly rhythm: every day is generated as a
	// Tuesday and the forced free-text phenomena are disabled, so the
	// stream has no scheduled change points — the null workload for the
	// drift detector's false-positive tests.
	Stationary bool
}

// DefaultConfig returns the calibrated 1/100-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                         seed,
		Start:                        logmodel.FromTime(time.Date(2005, 12, 6, 0, 0, 0, 0, time.UTC)),
		Days:                         7,
		Scale:                        1,
		SessionsPerWeekday:           250,
		BackgroundPerWeekday:         55000,
		MeanActionsPerSession:        6,
		InvocationsPerAction:         2,
		SubCallProb:                  0.4,
		ServiceInvocationsPerWeekday: 10,
		FailureProb:                  0.02,
		CoincidenceProbWeekday:       0.1,
		CoincidenceProbWeekend:       0.03,
		SimilarIDProbWeekday:         0.2,
		SimilarIDProbWeekend:         0.05,
		MultiTaskProb:                0.2,
		Users:                        800,
		ClientHosts:                  500,
	}
}

// dayFactors are table 1's per-day volume multipliers, indexed by weekday
// (time.Weekday order: Sunday = 0). Derived from 10.3/9.4/9.4/9.9/3.7/3.4/
// 10.7 million logs for Tue..Mon, normalized to the Tuesday volume.
var dayFactors = [7]float64{
	time.Sunday:    0.33, // 3.4 / 10.3
	time.Monday:    1.04, // 10.7 / 10.3
	time.Tuesday:   1.00, // 10.3
	time.Wednesday: 0.91, // 9.4
	time.Thursday:  0.91, // 9.4
	time.Friday:    0.96, // 9.9
	time.Saturday:  0.36, // 3.7
}

// sessionDayFactors reflect §4.6: "about 4000 sessions for week days and
// about 1000 on Saturday or Sunday".
var sessionDayFactors = [7]float64{
	time.Sunday:    0.23,
	time.Monday:    1.05,
	time.Tuesday:   1.00,
	time.Wednesday: 0.95,
	time.Thursday:  0.95,
	time.Friday:    1.00,
	time.Saturday:  0.25,
}

// hourWeights is the diurnal activity curve of a hospital weekday.
var hourWeights = [24]float64{
	0.08, 0.07, 0.06, 0.06, 0.07, 0.10, // 00-05
	0.25, 0.55, 0.90, 1.00, 1.00, 0.95, // 06-11
	0.75, 0.90, 0.95, 0.95, 0.90, 0.70, // 12-17
	0.45, 0.30, 0.25, 0.20, 0.15, 0.10, // 18-23
}

// weekendHourWeights flatten the curve: round-the-clock care dominates.
var weekendHourWeights = [24]float64{
	0.30, 0.28, 0.26, 0.26, 0.28, 0.32,
	0.45, 0.60, 0.75, 0.80, 0.80, 0.75,
	0.65, 0.70, 0.72, 0.72, 0.70, 0.60,
	0.50, 0.42, 0.38, 0.35, 0.32, 0.30,
}

// flatHourWeights remove the diurnal signal entirely. Stationary runs use
// them everywhere so that hour-of-day carries no information — overnight
// lulls would otherwise make sparse dependencies vanish for hours at a
// time, which is indistinguishable from a real outage at bucket scale.
var flatHourWeights = [24]float64{
	1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
	1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
}

// hourCurve selects the hour-of-day weight curve for a day.
func (s *Simulator) hourCurve(weekend bool) *[24]float64 {
	if s.cfg.Stationary {
		return &flatHourWeights
	}
	if weekend {
		return &weekendHourWeights
	}
	return &hourWeights
}

// DayStats summarizes one generated day for the evaluation harness.
type DayStats struct {
	// Day is the day index (0-based from Config.Start).
	Day int
	// Date is the calendar date of the day.
	Date time.Time
	// Weekend reports whether the day is a Saturday or Sunday.
	Weekend bool
	// Sessions is the number of user sessions generated.
	Sessions int
	// TotalLogs, SessionLogs and BackgroundLogs count the emitted entries.
	TotalLogs, SessionLogs, BackgroundLogs int
	// RealizedEdges is the set of ground-truth dependencies that were
	// actually exercised at least once during the day (the "dynamic"
	// truth of §4.4).
	RealizedEdges map[AppServicePair]bool
}

// Simulator generates the synthetic HUG log stream for a topology.
type Simulator struct {
	cfg  Config
	topo *Topology
	// skew maps a host to its fixed clock offset (§4.2): NTP-synced Unix
	// hosts within ±1 ms, NT-domain hosts within ±800 ms.
	skew map[string]logmodel.Millis
	// views are the compound user actions of each GUI application: fixed
	// combinations of dependencies invoked together ("the creation of a
	// view in a GUI application requires to combine information provided
	// by different components", §4.5). Frequent concurrent use — often
	// with asynchronous members — is the paper's main false-positive
	// mechanism for approaches L1 and L2.
	views map[string][][]*Edge
}

// NewSimulator creates a simulator for the topology. Zero-valued fields of
// cfg are filled from DefaultConfig.
func NewSimulator(cfg Config, topo *Topology) *Simulator {
	def := DefaultConfig(cfg.Seed)
	if cfg.Start == 0 {
		cfg.Start = def.Start
	}
	if cfg.Days == 0 {
		cfg.Days = def.Days
	}
	if cfg.Scale == 0 {
		cfg.Scale = def.Scale
	}
	if cfg.SessionsPerWeekday == 0 {
		cfg.SessionsPerWeekday = def.SessionsPerWeekday
	}
	if cfg.BackgroundPerWeekday == 0 {
		cfg.BackgroundPerWeekday = def.BackgroundPerWeekday
	}
	if cfg.MeanActionsPerSession == 0 {
		cfg.MeanActionsPerSession = def.MeanActionsPerSession
	}
	if cfg.InvocationsPerAction == 0 {
		cfg.InvocationsPerAction = def.InvocationsPerAction
	}
	if cfg.SubCallProb == 0 {
		cfg.SubCallProb = def.SubCallProb
	}
	if cfg.ServiceInvocationsPerWeekday == 0 {
		cfg.ServiceInvocationsPerWeekday = def.ServiceInvocationsPerWeekday
	}
	if cfg.FailureProb == 0 {
		cfg.FailureProb = def.FailureProb
	}
	if cfg.CoincidenceProbWeekday == 0 {
		cfg.CoincidenceProbWeekday = def.CoincidenceProbWeekday
	}
	if cfg.CoincidenceProbWeekend == 0 {
		cfg.CoincidenceProbWeekend = def.CoincidenceProbWeekend
	}
	if cfg.SimilarIDProbWeekday == 0 {
		cfg.SimilarIDProbWeekday = def.SimilarIDProbWeekday
	}
	if cfg.SimilarIDProbWeekend == 0 {
		cfg.SimilarIDProbWeekend = def.SimilarIDProbWeekend
	}
	if cfg.MultiTaskProb == 0 {
		cfg.MultiTaskProb = def.MultiTaskProb
	}
	if cfg.Users == 0 {
		cfg.Users = def.Users
	}
	if cfg.ClientHosts == 0 {
		cfg.ClientHosts = def.ClientHosts
	}
	sim := &Simulator{
		cfg:   cfg,
		topo:  topo,
		skew:  make(map[string]logmodel.Millis),
		views: make(map[string][][]*Edge),
	}
	sim.assignSkews()
	sim.buildViews()
	return sim
}

// buildViews assembles each GUI application's compound views: three fixed
// combinations of two or three dependencies, preferring one asynchronous
// member per view so its callee's activity interleaves with the view's
// other calls.
func (s *Simulator) buildViews() {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x71e35))
	for i := range s.topo.Apps {
		app := &s.topo.Apps[i]
		if app.Kind != KindGUI {
			continue
		}
		edges := make([]*Edge, 0, len(s.topo.EdgesOf(app.Name)))
		var asyncs []*Edge
		for _, e := range s.topo.EdgesOf(app.Name) {
			if e.Rare {
				continue
			}
			edges = append(edges, e)
			if e.Async {
				asyncs = append(asyncs, e)
			}
		}
		if len(edges) < 2 {
			continue
		}
		for v := 0; v < 3; v++ {
			size := 2 + rng.Intn(2)
			view := make([]*Edge, 0, size)
			if len(asyncs) > 0 {
				view = append(view, asyncs[rng.Intn(len(asyncs))])
			}
			for len(view) < size {
				e := edges[rng.Intn(len(edges))]
				dup := false
				for _, ve := range view {
					if ve == e {
						dup = true
					}
				}
				if !dup {
					view = append(view, e)
				}
			}
			// Synchronous members first, the async one in the middle, so
			// the delayed callee activity lands between other calls.
			sort.SliceStable(view, func(a, b int) bool { return !view[a].Async && view[b].Async })
			if len(view) > 2 {
				view[1], view[len(view)-1] = view[len(view)-1], view[1]
			}
			s.views[app.Name] = append(s.views[app.Name], view)
		}
	}
}

// Config returns the simulator's effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Topology returns the simulated topology.
func (s *Simulator) Topology() *Topology { return s.topo }

// assignSkews draws the per-host clock offsets deterministically.
func (s *Simulator) assignSkews() {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5caff01d))
	for _, a := range s.topo.Apps {
		if a.Kind == KindGUI {
			continue // GUI apps log from client hosts, handled below
		}
		if a.UnixHost {
			s.skew[a.Host] = logmodel.Millis(rng.Intn(3) - 1) // ±1 ms
		} else {
			s.skew[a.Host] = logmodel.Millis(rng.Intn(1601) - 800) // ±800 ms
		}
	}
	for i := 0; i < s.cfg.ClientHosts; i++ {
		s.skew[clientHost(i)] = logmodel.Millis(rng.Intn(1601) - 800)
	}
}

func clientHost(i int) string { return fmt.Sprintf("pc%04d", i) }
func userName(i int) string   { return fmt.Sprintf("u%04d", i) }

// DayRange returns the time range of the i-th simulated day.
func (s *Simulator) DayRange(day int) logmodel.TimeRange {
	start := s.cfg.Start + logmodel.Millis(day)*logmodel.MillisPerDay
	return logmodel.TimeRange{Start: start, End: start + logmodel.MillisPerDay}
}

// WeekRange returns the time range of the whole simulated period.
func (s *Simulator) WeekRange() logmodel.TimeRange {
	return logmodel.TimeRange{
		Start: s.cfg.Start,
		End:   s.cfg.Start + logmodel.Millis(s.cfg.Days)*logmodel.MillisPerDay,
	}
}

// DayDate returns the calendar date of the i-th day.
func (s *Simulator) DayDate(day int) time.Time {
	return s.DayRange(day).Start.Time()
}

// IsWeekend reports whether the i-th day is a Saturday or Sunday.
func (s *Simulator) IsWeekend(day int) bool {
	wd := s.DayDate(day).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// GenerateDay generates the log stream of one day, returning the sorted
// store and the day's statistics. Generation is deterministic per
// (Config.Seed, day).
func (s *Simulator) GenerateDay(day int) (*logmodel.Store, DayStats) {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(day)*1_000_003))
	r := s.DayRange(day)
	wd := s.DayDate(day).Weekday()
	weekend := wd == time.Saturday || wd == time.Sunday
	if s.cfg.Stationary {
		wd, weekend = time.Tuesday, false
	}
	stats := DayStats{
		Day:           day,
		Date:          s.DayDate(day),
		Weekend:       weekend,
		RealizedEdges: make(map[AppServicePair]bool),
	}

	store := logmodel.NewStore(int(s.cfg.BackgroundPerWeekday * s.cfg.Scale * 1.3))

	emit := func(t logmodel.Millis, app *App, host, user string, sev logmodel.Severity, msg string) {
		if len(s.cfg.Incidents) > 0 {
			// A dark application logs nothing; a migrated one logs from
			// its new host. Both checks use the pre-skew time, so a host's
			// clock offset cannot move an entry across an incident edge.
			if s.appDown(app.Name, t) {
				return
			}
			host = s.hostAt(app, host, t)
		}
		t += s.skew[host]
		if t < 0 {
			t = 0
		}
		store.Append(logmodel.Entry{
			Time: t, Source: app.Name, Host: host, User: user,
			Severity: sev, Message: msg,
		})
	}

	// --- User sessions ----------------------------------------------------
	nSessions := int(s.cfg.SessionsPerWeekday*s.cfg.Scale*sessionDayFactors[wd] + 0.5)
	for i := 0; i < nSessions; i++ {
		before := store.Len()
		user := userName(rng.Intn(s.cfg.Users))
		host := clientHost(rng.Intn(s.cfg.ClientHosts))
		start := s.sampleSessionStart(rng, r, weekend)
		gui := s.pickGUI(rng, weekend)
		s.generateSession(rng, r, weekend, emit, &stats, gui, user, host, start)
		if rng.Float64() < s.cfg.MultiTaskProb && i+1 < nSessions {
			// The same user opens a second, concurrently interleaved
			// session on another machine, in the habitual companion
			// application of the first (staff who work in DPIMain
			// habitually keep the viewer open next to it). The fixed
			// pairing concentrates the spurious co-occurrence on specific
			// application pairs, as observed in §4.6.
			i++
			host2 := clientHost(rng.Intn(s.cfg.ClientHosts))
			start2 := start + logmodel.Millis(rng.Int63n(int64(5*logmodel.MillisPerMinute)))
			s.generateSession(rng, r, weekend, emit, &stats, s.companionGUI(gui, weekend), user, host2, start2)
		}
		stats.SessionLogs += store.Len() - before
	}
	stats.Sessions = nSessions

	// --- Autonomous service-to-service activity ---------------------------
	s.generateServiceCalls(rng, r, wd, weekend, emit, &stats)

	// --- Scripted-incident traffic ----------------------------------------
	if len(s.cfg.Incidents) > 0 {
		s.generateIncidentTraffic(rng, r, emit, &stats)
	}

	// --- Injected free-text phenomena -------------------------------------
	s.injectPhenomena(rng, r, wd, weekend, emit)

	// --- Background noise --------------------------------------------------
	before := store.Len()
	s.generateBackground(rng, r, wd, weekend, emit)
	stats.BackgroundLogs = store.Len() - before

	store.Sort()
	stats.TotalLogs = store.Len()
	return store, stats
}

// GenerateAll generates every day of the configured period and returns the
// per-day stores and statistics.
func (s *Simulator) GenerateAll() ([]*logmodel.Store, []DayStats) {
	stores := make([]*logmodel.Store, s.cfg.Days)
	stats := make([]DayStats, s.cfg.Days)
	for d := 0; d < s.cfg.Days; d++ {
		stores[d], stats[d] = s.GenerateDay(d)
	}
	return stores, stats
}

// generateServiceCalls emits the autonomous service→service invocations:
// scheduled jobs, push updates and housekeeping traffic that exercise the
// middle-tier dependency edges independently of user sessions. Without
// them, unpopular edges would never be realized in a week, contradicting
// the paper's false-negative analysis (§4.8 accounts for every undetected
// dependency).
func (s *Simulator) generateServiceCalls(rng *rand.Rand, r logmodel.TimeRange,
	wd time.Weekday, weekend bool, emit emitFunc, stats *DayStats) {

	// Scheduled jobs and push updates keep running on weekends at a rate
	// that drops far less than the interactive load — this is also why the
	// paper's L1 performs *better* in low-load periods: with fewer
	// concurrent users diluting each service's stream, the correlation
	// between direct interactors stands out (§4.9).
	factor := dayFactors[wd]
	if weekend {
		factor = 0.6
	}
	for i := range s.topo.Apps {
		app := &s.topo.Apps[i]
		if app.Kind != KindService {
			continue
		}
		for _, e := range s.topo.EdgesOf(app.Name) {
			if e.Rare {
				continue
			}
			mean := s.cfg.ServiceInvocationsPerWeekday * e.Weight * factor * s.cfg.Scale
			n := poisson(rng, mean)
			for j := 0; j < n; j++ {
				t := s.sampleSessionStart(rng, r, weekend)
				s.simulateCall(rng, e, t, app, app.Host, "", 1, emit, stats)
			}
		}
	}
}

// sampleSessionStart draws a session start time following the diurnal curve.
func (s *Simulator) sampleSessionStart(rng *rand.Rand, r logmodel.TimeRange, weekend bool) logmodel.Millis {
	w := s.hourCurve(weekend)
	var total float64
	for _, x := range w {
		total += x
	}
	x := rng.Float64() * total
	hour := 0
	for h, wh := range w {
		x -= wh
		if x <= 0 {
			hour = h
			break
		}
	}
	return r.Start + logmodel.Millis(hour)*logmodel.MillisPerHour +
		logmodel.Millis(rng.Int63n(int64(logmodel.MillisPerHour)))
}

type emitFunc func(t logmodel.Millis, app *App, host, user string, sev logmodel.Severity, msg string)

// pickGUI draws the GUI application of a session. GUI apps come first in
// the app slice. Administrative desks (admission, billing) are closed on
// weekends, which is what makes L3 detect visibly fewer dependencies on
// Saturday and Sunday (figure 8).
func (s *Simulator) pickGUI(rng *rand.Rand, weekend bool) *App {
	gui := &s.topo.Apps[rng.Intn(len(guiAppNames))]
	for weekend && weekdayOnlyGUI[gui.Name] {
		gui = &s.topo.Apps[rng.Intn(len(guiAppNames))]
	}
	return gui
}

// companionGUI returns the habitual second application of a multitasking
// user of gui — a fixed pairing, so the spurious co-occurrence concentrates
// on specific application pairs.
func (s *Simulator) companionGUI(gui *App, weekend bool) *App {
	for i, n := range guiAppNames {
		if n == gui.Name {
			for off := 3; ; off++ {
				c := &s.topo.Apps[(i+off)%len(guiAppNames)]
				if c != gui && !(weekend && weekdayOnlyGUI[c.Name]) {
					return c
				}
			}
		}
	}
	return gui
}

// generateSession simulates one user session: the given user on a client
// machine driving the gui application through a series of actions, each
// triggering a synchronous or asynchronous call tree, starting at t.
func (s *Simulator) generateSession(rng *rand.Rand, r logmodel.TimeRange, weekend bool,
	emit emitFunc, stats *DayStats, gui *App, user, host string, t logmodel.Millis) {

	nActions := 1 + poisson(rng, s.cfg.MeanActionsPerSession-1)
	for a := 0; a < nActions && t < r.End; a++ {
		// The user acts: one or two GUI logs.
		var msg string
		switch {
		case rng.Float64() < 0.18:
			if rng.Float64() < 0.12 {
				msg = patientMessage(nonLegacySurname(rng), firstNames[rng.Intn(len(firstNames))], rng)
			} else {
				msg = patientIDMessage(rng)
			}
		default:
			msg = guiActionMessage(rng)
		}
		emit(t, gui, host, user, logmodel.SevInfo, msg)
		if rng.Float64() < 0.5 {
			emit(t+logmodel.Millis(rng.Intn(300)), gui, host, user, logmodel.SevDebug, guiActionMessage(rng))
		}

		// The action triggers service invocations: either a compound view
		// (a fixed combination of dependencies, the concurrent-use pattern
		// of §4.5/§4.6) or ad-hoc weighted calls.
		ct := t + logmodel.Millis(50+rng.Intn(400))
		if vs := s.views[gui.Name]; len(vs) > 0 && rng.Float64() < 0.70 {
			view := vs[rng.Intn(len(vs))]
			for _, e := range view {
				end := s.simulateCall(rng, e, ct, gui, host, user, 0, emit, stats)
				ct = end + logmodel.Millis(20+rng.Intn(200))
			}
		} else {
			nInv := 1 + poisson(rng, s.cfg.InvocationsPerAction-1)
			edges := s.topo.EdgesOf(gui.Name)
			for k := 0; k < nInv && len(edges) > 0; k++ {
				e := weightedEdge(rng, edges)
				if e == nil || e.Rare {
					continue
				}
				end := s.simulateCall(rng, e, ct, gui, host, user, 0, emit, stats)
				ct = end + logmodel.Millis(20+rng.Intn(200))
			}
		}

		// Think time until the next action.
		t += logmodel.SecondsToMillis(5 + rng.ExpFloat64()*55)
	}
}

// simulateCall simulates one invocation of edge e by the caller application
// running on callerHost for the given user, starting at t. It returns the
// time the caller regains control. depth limits transitive recursion.
func (s *Simulator) simulateCall(rng *rand.Rand, e *Edge, t logmodel.Millis,
	caller *App, callerHost, user string, depth int, emit emitFunc, stats *DayStats) logmodel.Millis {

	// Scripted incidents circuit-break the call: a dark caller makes no
	// calls, and calls into a dark group's owner are abandoned without a
	// log line — which is what cascades an outage to the traffic the dark
	// application carried.
	fo := false
	if len(s.cfg.Incidents) > 0 {
		if s.appDown(caller.Name, t) || s.groupDown(e.Group, t) {
			return t
		}
		fo = s.failoverActive(e.Group, t)
	}

	g := s.topo.Group(e.Group)
	owner := s.topo.App(g.Owner)
	fct := g.Services[rng.Intn(len(g.Services))]
	urlFrag := urlFragOf(g)
	stats.RealizedEdges[AppServicePair{App: e.Caller, Group: e.Group}] = true

	// The request context carries the user down the call tree, but each
	// application decides per log line whether it records it — this is
	// what limits the session-assignable share of the stream to the ~10%
	// the paper reports (§4.6).
	maybeUser := func(a *App) string {
		if user != "" && rng.Float64() < a.LogsUserProb {
			return user
		}
		return ""
	}

	// Caller-side invocation log (before the call).
	failed := e.StackTraceCite != "" && rng.Float64() < s.cfg.FailureProb
	if e.Logged {
		cited := e.Group
		if e.WrongID != "" {
			cited = e.WrongID
			if wg := s.topo.Group(e.WrongID); wg != nil {
				urlFrag = urlFragOf(wg)
			}
		}
		emit(t, caller, callerHost, maybeUser(caller), logmodel.SevInfo,
			invokeMessage(caller.InvokeStyle, cited, fct, urlFrag, rng))
		if fo {
			// The slow replica times the first attempt out and the caller
			// retries, logging a second invocation within ~half a second —
			// the citation-delay shift the drift detector's KS channel is
			// built to notice.
			emit(t+logmodel.Millis(400+rng.Intn(800)), caller, callerHost,
				maybeUser(caller), logmodel.SevWarn,
				invokeMessage(caller.InvokeStyle, cited, fct, urlFrag, rng))
		}
	}

	latency := logmodel.Millis(10 + rng.Intn(290))
	if fo {
		latency *= 3
	}
	delay := latency / 2
	if e.Async {
		// Fire-and-forget: the callee acts after a second-scale delay and
		// the caller regains control immediately.
		delay = logmodel.SecondsToMillis(0.2 + rng.ExpFloat64()*0.5)
	}
	serveT := t + delay

	// Callee serving logs on the owner's host: one headline line (the only
	// one that may cite the group id, per the owner's serving style) plus
	// a few detail lines.
	emit(serveT, owner, owner.Host, maybeUser(owner), logmodel.SevInfo,
		servingMessage(owner.ServingStyle, g.ID, fct, rng))
	details := 1 + poisson(rng, 1.5)
	for k := 0; k < details; k++ {
		emit(serveT+logmodel.Millis(1+rng.Intn(60)), owner, owner.Host, maybeUser(owner),
			logmodel.SevDebug, servingMessage(-1, g.ID, fct, rng))
	}

	// Transitive sub-calls by the owner.
	if depth < 2 {
		for _, sub := range s.topo.EdgesOf(owner.Name) {
			if sub.Rare || rng.Float64() >= s.cfg.SubCallProb {
				continue
			}
			s.simulateCall(rng, sub, serveT+logmodel.Millis(1+rng.Intn(30)),
				owner, owner.Host, user, depth+1, emit, stats)
		}
	}

	// Caller-side completion or failure log.
	retT := t + latency
	if e.Async {
		retT = t + logmodel.Millis(1+rng.Intn(10))
	}
	if failed && e.Logged {
		cite := e.StackTraceCite
		var citedFrag string
		if cg := s.topo.Group(cite); cg != nil {
			citedFrag = urlFragOf(cg)
		}
		emit(retT, caller, callerHost, maybeUser(caller), logmodel.SevError,
			stackTraceMessage(g.ID, fct, cite, citedFrag))
	} else if e.Logged && !e.Async && rng.Float64() < 0.5 {
		emit(retT, caller, callerHost, maybeUser(caller), logmodel.SevDebug, completionMessage(fct, rng))
	}
	return retT
}

// weekdaySlot numbers the working days of the test week (Tue Dec 6 is day
// 0). It returns -1 for weekend days.
func weekdaySlot(wd time.Weekday) int {
	switch wd {
	case time.Tuesday:
		return 0
	case time.Wednesday:
		return 1
	case time.Thursday:
		return 2
	case time.Friday:
		return 3
	case time.Monday:
		return 4
	default:
		return -1
	}
}

// injectPhenomena emits the controlled free-text phenomena for the day:
// coincidence patient names, spontaneous similar-id citations and forced
// occurrences of the stack-trace transitive citations. Each injected pair
// fires deterministically on one assigned weekday of the week (so the
// week-union reproduces the paper's §4.8 counts exactly) plus randomly with
// a small probability.
func (s *Simulator) injectPhenomena(rng *rand.Rand, r logmodel.TimeRange,
	wd time.Weekday, weekend bool, emit emitFunc) {

	slot := weekdaySlot(wd)
	if s.cfg.Stationary {
		slot = -1 // no forced phenomena: every day draws from the same law
	}
	coinProb := s.cfg.CoincidenceProbWeekday
	simProb := s.cfg.SimilarIDProbWeekday
	if weekend {
		coinProb = s.cfg.CoincidenceProbWeekend
		simProb = s.cfg.SimilarIDProbWeekend
	}

	for i, p := range s.topo.Phenomena.CoincidencePairs {
		forced := slot >= 0 && i%5 == slot
		if !forced && rng.Float64() >= coinProb {
			continue
		}
		app := s.topo.App(p.App)
		t := s.sampleSessionStart(rng, r, weekend)
		emit(t, app, clientHost(rng.Intn(s.cfg.ClientHosts)), userName(rng.Intn(s.cfg.Users)),
			logmodel.SevInfo,
			patientMessage(p.Group, firstNames[rng.Intn(len(firstNames))], rng))
	}

	// The spontaneous similar-id citations are the entries of
	// SimilarIDPairs beyond the first three (those stem from wrong-name
	// edges and are emitted by simulateCall itself).
	sp := s.topo.Phenomena.SimilarIDPairs
	if len(sp) > 3 {
		for i, p := range sp[3:] {
			forced := slot >= 0 && (i+4)%5 == slot
			if !forced && rng.Float64() >= simProb {
				continue
			}
			app := s.topo.App(p.App)
			g := s.topo.Group(p.Group)
			t := s.sampleSessionStart(rng, r, weekend)
			emit(t, app, clientHost(rng.Intn(s.cfg.ClientHosts)), userName(rng.Intn(s.cfg.Users)),
				logmodel.SevInfo,
				invokeMessage(app.InvokeStyle, g.ID, g.Services[0], urlFragOf(g), rng))
		}
	}

	// Forced stack-trace failures: each stack-trace edge fails at least
	// once a week (organic failures also occur via FailureProb).
	for i := range s.topo.Edges {
		e := &s.topo.Edges[i]
		if e.StackTraceCite == "" || !e.Logged {
			continue
		}
		if slot < 0 || i%5 != slot%5 {
			continue
		}
		s.emitForcedFailure(rng, r, e, weekend, emit)
	}
}

// emitForcedFailure logs one failed invocation of edge e (the caller-side
// exception trace citing the transitively used group).
func (s *Simulator) emitForcedFailure(rng *rand.Rand, r logmodel.TimeRange,
	e *Edge, weekend bool, emit emitFunc) {

	caller := s.topo.App(e.Caller)
	g := s.topo.Group(e.Group)
	fct := g.Services[rng.Intn(len(g.Services))]
	var citedFrag string
	if cg := s.topo.Group(e.StackTraceCite); cg != nil {
		citedFrag = urlFragOf(cg)
	}
	host := caller.Host
	user := ""
	if caller.Kind == KindGUI {
		host = clientHost(rng.Intn(s.cfg.ClientHosts))
		user = userName(rng.Intn(s.cfg.Users))
	}
	t := s.sampleSessionStart(rng, r, weekend)
	emit(t, caller, host, user, logmodel.SevError,
		stackTraceMessage(g.ID, fct, e.StackTraceCite, citedFrag))
}

// generateBackground emits the autonomous (non-session) activity of all
// applications for the day, following the diurnal curve for service apps
// and a flat profile for batch apps.
func (s *Simulator) generateBackground(rng *rand.Rand, r logmodel.TimeRange,
	wd time.Weekday, weekend bool, emit emitFunc) {

	var totalWeight float64
	for i := range s.topo.Apps {
		totalWeight += s.topo.Apps[i].BackgroundWeight
	}
	if totalWeight == 0 {
		return
	}
	budget := s.cfg.BackgroundPerWeekday * s.cfg.Scale * dayFactors[wd]
	w := s.hourCurve(weekend)
	var hourTotal float64
	for _, x := range w {
		hourTotal += x
	}
	for i := range s.topo.Apps {
		app := &s.topo.Apps[i]
		n := budget * app.BackgroundWeight / totalWeight
		flat := app.Kind == KindBatch
		for h := 0; h < 24; h++ {
			hw := w[h] / hourTotal * 24
			if flat {
				hw = 1
			}
			count := poisson(rng, n*hw/24)
			hr := logmodel.TimeRange{
				Start: r.Start + logmodel.Millis(h)*logmodel.MillisPerHour,
				End:   r.Start + logmodel.Millis(h+1)*logmodel.MillisPerHour,
			}
			host := app.Host
			for j := 0; j < count; j++ {
				t := hr.Start + logmodel.Millis(rng.Int63n(int64(logmodel.MillisPerHour)))
				if app.Kind == KindGUI {
					host = clientHost(rng.Intn(s.cfg.ClientHosts))
				}
				sev := logmodel.SevDebug
				if rng.Float64() < 0.25 {
					sev = logmodel.SevInfo
				}
				emit(t, app, host, "", sev, noiseMessage(rng))
			}
		}
	}
}

// nonLegacySurname draws a surname that is not a legacy group codename, so
// organic patient logs never collide with directory ids; collisions are
// injected in controlled numbers by injectPhenomena.
func nonLegacySurname(rng *rand.Rand) string {
	n := len(patientSurnames) - len(legacyGroupIDs)
	return patientSurnames[rng.Intn(n)]
}

// urlFragOf returns the host:port/path fragment of a group's root URL as it
// appears in invocation logs.
func urlFragOf(g *ServiceGroup) string {
	const pfx = "http://"
	u := g.RootURL
	if len(u) > len(pfx) && u[:len(pfx)] == pfx {
		return u[len(pfx):]
	}
	return u
}

// weightedEdge picks an edge proportionally to Weight.
func weightedEdge(rng *rand.Rand, edges []*Edge) *Edge {
	var total float64
	for _, e := range edges {
		if !e.Rare {
			total += e.Weight
		}
	}
	if total == 0 {
		return nil
	}
	x := rng.Float64() * total
	for _, e := range edges {
		if e.Rare {
			continue
		}
		x -= e.Weight
		if x <= 0 {
			return e
		}
	}
	return nil
}

// poisson draws a Poisson variate with the given mean (Knuth's algorithm
// for small means, normal approximation above 30).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + rng.NormFloat64()*math.Sqrt(mean)
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
