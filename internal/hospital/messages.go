package hospital

import (
	"fmt"
	"math/rand"
	"strings"

	"logscape/internal/directory"
)

// Message formats. The paper's §3.3 observes that the way a remote service
// invocation is logged "is peculiar to each piece of code, respectively the
// code's author", but almost always cites an element of the service
// directory. Each simulated application is assigned one invocation style
// and (for group owners) one serving style at topology-generation time.

// numInvokeStyles is the number of client-side invocation-log formats.
const numInvokeStyles = 6

// numStoppableServingStyles is the number of server-side formats covered by
// the canonical stop patterns; numUnstoppableServingStyles formats are not
// (the two surviving inverted dependencies of §4.8).
const (
	numStoppableServingStyles   = 10
	numUnstoppableServingStyles = 2
)

// invokeMessage renders a client-side invocation log for the given style,
// citing the (possibly wrong) group id or its URL fragment.
func invokeMessage(style int, citedID, fct, urlFrag string, rng *rand.Rand) string {
	switch style % numInvokeStyles {
	case 0:
		return fmt.Sprintf("Invoke externalService [fct [%s] server [%s]]", fct, urlFrag)
	case 1:
		return fmt.Sprintf("(%s) %s( $myparams )", citedID, fct)
	case 2:
		return fmt.Sprintf("calling %s.%s for case %d", citedID, fct, 100000+rng.Intn(900000))
	case 3:
		return fmt.Sprintf("ws-call url=%s fct=%s took %d ms", urlFrag, fct, 5+rng.Intn(400))
	case 4:
		return fmt.Sprintf("remote invocation of %s on %s ok", fct, citedID)
	default:
		return fmt.Sprintf("-> %s : %s", citedID, fct)
	}
}

// completionMessage renders the caller's after-invocation log; it carries no
// directory citation (the before-log already did).
func completionMessage(fct string, rng *rand.Rand) string {
	return fmt.Sprintf("call %s returned in %d ms", fct, 5+rng.Intn(400))
}

// servingMessage renders a server-side log of the owner handling a request
// for one of its groups. Styles 0..numStoppableServingStyles-1 are covered
// by CanonicalStopPatterns; the remaining styles are not. Style -1 renders
// a citation-free serving log.
func servingMessage(style int, groupID, fct string, rng *rand.Rand) string {
	ms := 1 + rng.Intn(250)
	switch style {
	case 0:
		return fmt.Sprintf("serving request %s for group %s", fct, groupID)
	case 1:
		return fmt.Sprintf("handled %s.%s in %d ms", groupID, fct, ms)
	case 2:
		return fmt.Sprintf("request received [group %s] [fct %s]", groupID, fct)
	case 3:
		return fmt.Sprintf("executing %s (%s) on behalf of client", fct, groupID)
	case 4:
		return fmt.Sprintf("SOAP dispatch %s/%s status=200", groupID, fct)
	case 5:
		return fmt.Sprintf("inbound call %s @ %s", fct, groupID)
	case 6:
		return fmt.Sprintf("processed %s operation %s rc=0", groupID, fct)
	case 7:
		return fmt.Sprintf("service %s begin %s", groupID, fct)
	case 8:
		return fmt.Sprintf("answering %s for %s", fct, groupID)
	case 9:
		return fmt.Sprintf("done %s::%s duration=%dms", groupID, fct, ms)
	case 10:
		return fmt.Sprintf("%s %s t=%dms rc=0", groupID, fct, ms)
	case 11:
		return fmt.Sprintf("trace %s|%s|ok", fct, groupID)
	default:
		return fmt.Sprintf("exec %s completed in %d ms", fct, ms)
	}
}

// stackTraceMessage renders the caller-side log of a failed invocation of
// group failedID whose owner's exception trace cites citedGroup — the
// transitive false-positive mechanism of §4.8 ("the log of an exception
// stack trace returned by the intermediary").
func stackTraceMessage(failedID, fct, citedGroup, citedFrag string) string {
	return fmt.Sprintf(
		"remote exception from %s.%s: ServiceException caused by TimeoutException at http://%s (%s)",
		failedID, fct, citedFrag, citedGroup)
}

// patientMessage renders a clinical free-text log mentioning a patient by
// name. When the surname is a legacy group codename this produces the
// coincidence false positives of §4.8.
func patientMessage(surname, first string, rng *rand.Rand) string {
	return fmt.Sprintf("opened record of patient %s %s (PID %d)", surname, first, 10000+rng.Intn(90000))
}

// patientIDMessage renders the common, name-free variant.
func patientIDMessage(rng *rand.Rand) string {
	return fmt.Sprintf("opened record PID %d", 10000+rng.Intn(90000))
}

// guiActionMessage renders a generic GUI interaction log.
func guiActionMessage(rng *rand.Rand) string {
	actions := []string{
		"view rendered in %d ms",
		"tab switched to results after %d ms",
		"form validation passed (%d fields)",
		"printing document batch of %d pages",
		"search returned %d hits",
	}
	return fmt.Sprintf(actions[rng.Intn(len(actions))], 1+rng.Intn(500))
}

// noiseMessage renders a background log with no citations.
func noiseMessage(rng *rand.Rand) string {
	m := noiseMessages[rng.Intn(len(noiseMessages))]
	if strings.Contains(m, "%d") {
		n := strings.Count(m, "%d")
		args := make([]any, n)
		for i := range args {
			args[i] = rng.Intn(1000)
		}
		return fmt.Sprintf(m, args...)
	}
	return m
}

// CanonicalStopPatterns returns the ten stop patterns used by the case
// study (§4.8 reports results "with 10 stop patterns"). Each pattern
// matches one of the server-side serving-log formats; two formats
// deliberately remain uncovered.
func CanonicalStopPatterns() []directory.StopPattern {
	return []directory.StopPattern{
		{Contains: "serving request "},
		{Contains: "handled "},
		{Contains: "request received ["},
		{Contains: "on behalf of client"},
		{Contains: "SOAP dispatch "},
		{Contains: "inbound call "},
		{Contains: "processed "},
		{Contains: " begin "},
		{Contains: "answering "},
		{Contains: "::"},
	}
}
