package hospital

import (
	"math/rand"
	"testing"
	"time"

	"logscape/internal/logmodel"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

// smallConfig returns a light configuration for fast tests.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.1
	return cfg
}

func TestSimulatorDayDeterministic(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 7)
	sim := NewSimulator(smallConfig(7), topo)
	a, sa := sim.GenerateDay(0)
	b, sb := sim.GenerateDay(0)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("entry %d differs", i)
		}
	}
	if sa.TotalLogs != sb.TotalLogs || sa.Sessions != sb.Sessions {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestSimulatorDayBasics(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 7)
	sim := NewSimulator(smallConfig(7), topo)
	store, stats := sim.GenerateDay(0)
	if store.Len() == 0 {
		t.Fatal("empty day")
	}
	if !store.Sorted() {
		t.Fatal("store not sorted")
	}
	if stats.TotalLogs != store.Len() {
		t.Errorf("TotalLogs = %d, Len = %d", stats.TotalLogs, store.Len())
	}
	// Day 0 of the default start is Tuesday 2005-12-06.
	if stats.Date.Weekday() != time.Tuesday {
		t.Errorf("day 0 weekday = %v", stats.Date.Weekday())
	}
	if stats.Weekend {
		t.Error("Tuesday marked as weekend")
	}
	if sim.IsWeekend(0) || !sim.IsWeekend(4) || !sim.IsWeekend(5) || sim.IsWeekend(6) {
		t.Error("IsWeekend pattern wrong for Dec 6-12 2005")
	}
	// All entries fall inside the day (modulo clock skew at the edges).
	r := sim.DayRange(0)
	slack := logmodel.Millis(1000)
	for _, e := range store.Entries() {
		if e.Time < r.Start-slack || e.Time >= r.End+slack {
			t.Fatalf("entry at %v outside day %v", e.Time, r)
		}
	}
	if stats.Sessions == 0 || stats.SessionLogs == 0 || stats.BackgroundLogs == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if len(stats.RealizedEdges) == 0 {
		t.Error("no edges realized")
	}
}

func TestWeekVolumeShape(t *testing.T) {
	// Table 1 shape: weekend days carry roughly a third of weekday volume.
	topo := GenerateTopology(DefaultTopologyConfig(), 3)
	cfg := smallConfig(3)
	sim := NewSimulator(cfg, topo)
	volumes := make([]int, 7)
	for d := 0; d < 7; d++ {
		_, stats := sim.GenerateDay(d)
		volumes[d] = stats.TotalLogs
	}
	// Days 4, 5 are Sat/Sun.
	weekdayMean := float64(volumes[0]+volumes[1]+volumes[2]+volumes[3]+volumes[6]) / 5
	for _, d := range []int{4, 5} {
		ratio := float64(volumes[d]) / weekdayMean
		if ratio < 0.2 || ratio > 0.55 {
			t.Errorf("weekend day %d ratio = %.2f, want ≈ 0.33", d, ratio)
		}
	}
	// Monday (day 6) is the peak in table 1; it must be at least average.
	if float64(volumes[6]) < 0.95*weekdayMean {
		t.Errorf("Monday volume %d below weekday mean %.0f", volumes[6], weekdayMean)
	}
}

func TestRareEdgesNeverRealized(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 5)
	sim := NewSimulator(smallConfig(5), topo)
	for d := 0; d < 7; d++ {
		_, stats := sim.GenerateDay(d)
		for _, p := range topo.Phenomena.RareEdges {
			if stats.RealizedEdges[p] {
				t.Errorf("rare edge %v realized on day %d", p, d)
			}
		}
	}
}

func TestMostEdgesRealizedOnWeekday(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 5)
	sim := NewSimulator(DefaultConfig(5), topo)
	_, stats := sim.GenerateDay(0) // Tuesday, full scale
	realized := len(stats.RealizedEdges)
	possible := len(topo.Edges) - len(topo.Phenomena.RareEdges)
	if float64(realized) < 0.75*float64(possible) {
		t.Errorf("realized %d of %d non-rare edges on a weekday", realized, possible)
	}
}

func TestSessionAssignableShare(t *testing.T) {
	// §4.6: 7.5–11%% of logs can be assigned to a session. Our proxy: the
	// share of entries carrying a user id should be in that neighborhood.
	topo := GenerateTopology(DefaultTopologyConfig(), 11)
	sim := NewSimulator(DefaultConfig(11), topo)
	store, _ := sim.GenerateDay(0)
	withUser := 0
	for _, e := range store.Entries() {
		if e.User != "" {
			withUser++
		}
	}
	share := float64(withUser) / float64(store.Len())
	if share < 0.05 || share > 0.20 {
		t.Errorf("user-carrying share = %.3f, want ≈ 0.075–0.11", share)
	}
}

func TestClockSkewBounds(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 13)
	sim := NewSimulator(smallConfig(13), topo)
	for host, skew := range sim.skew {
		if skew < -800 || skew > 800 {
			t.Errorf("host %s skew %d out of bounds", host, skew)
		}
	}
	// Unix service hosts must be within ±1 ms.
	for _, a := range topo.Apps {
		if a.Kind != KindGUI && a.UnixHost {
			if s := sim.skew[a.Host]; s < -1 || s > 1 {
				t.Errorf("unix host %s skew %d", a.Host, s)
			}
		}
	}
}

func TestGenerateAll(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 17)
	cfg := smallConfig(17)
	cfg.Days = 2
	sim := NewSimulator(cfg, topo)
	stores, stats := sim.GenerateAll()
	if len(stores) != 2 || len(stats) != 2 {
		t.Fatalf("lens = %d, %d", len(stores), len(stats))
	}
	if stats[0].Day != 0 || stats[1].Day != 1 {
		t.Error("day indexes")
	}
	if stores[0].Len() == 0 || stores[1].Len() == 0 {
		t.Error("empty stores")
	}
}

func TestWeekRange(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 1)
	sim := NewSimulator(smallConfig(1), topo)
	wr := sim.WeekRange()
	if wr.Days() != 7 {
		t.Errorf("week days = %d", wr.Days())
	}
	if sim.DayRange(0).Start != wr.Start {
		t.Error("day 0 start mismatch")
	}
	if sim.DayRange(6).End != wr.End {
		t.Error("day 6 end mismatch")
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	topo := GenerateTopology(DefaultTopologyConfig(), 1)
	sim := NewSimulator(Config{Seed: 1}, topo)
	cfg := sim.Config()
	if cfg.Days != 7 || cfg.Scale != 1 || cfg.Users == 0 || cfg.ClientHosts == 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	if cfg.Start.Time().Year() != 2005 {
		t.Errorf("start = %v", cfg.Start.Time())
	}
}

func TestPoisson(t *testing.T) {
	rng := newTestRand()
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of non-positive mean")
	}
	// Small mean: sample mean close to true mean.
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3)
	}
	mean := float64(sum) / n
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("poisson(3) sample mean = %v", mean)
	}
	// Large mean: normal approximation path.
	sum = 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 100)
	}
	mean = float64(sum) / n
	if mean < 98 || mean > 102 {
		t.Errorf("poisson(100) sample mean = %v", mean)
	}
}

func TestWeightedEdge(t *testing.T) {
	rng := newTestRand()
	edges := []*Edge{
		{Caller: "A", Group: "G1", Weight: 1},
		{Caller: "A", Group: "G2", Weight: 9},
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[weightedEdge(rng, edges).Group]++
	}
	if counts["G2"] < 8500 || counts["G2"] > 9500 {
		t.Errorf("G2 picked %d times of 10000, want ≈ 9000", counts["G2"])
	}
	// Rare edges are never picked.
	rare := []*Edge{{Caller: "A", Group: "G", Weight: 5, Rare: true}}
	if weightedEdge(rng, rare) != nil {
		t.Error("rare edge picked")
	}
	if weightedEdge(rng, nil) != nil {
		t.Error("empty edges")
	}
}

func TestNonLegacySurnameNeverCollides(t *testing.T) {
	rng := newTestRand()
	legacy := map[string]bool{}
	for _, id := range legacyGroupIDs {
		legacy[id] = true
	}
	for i := 0; i < 5000; i++ {
		if s := nonLegacySurname(rng); legacy[s] {
			t.Fatalf("drew legacy surname %s", s)
		}
	}
}

func TestUrlFragOf(t *testing.T) {
	g := &ServiceGroup{RootURL: "http://host.hug.local:8123/path"}
	if f := urlFragOf(g); f != "host.hug.local:8123/path" {
		t.Errorf("frag = %q", f)
	}
	g2 := &ServiceGroup{RootURL: "weird"}
	if f := urlFragOf(g2); f != "weird" {
		t.Errorf("frag = %q", f)
	}
}
