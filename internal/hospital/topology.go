package hospital

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"logscape/internal/core"
	"logscape/internal/directory"
)

// AppKind classifies an application.
type AppKind int

// Application kinds.
const (
	// KindGUI is an interactive client application that drives user
	// sessions.
	KindGUI AppKind = iota
	// KindService is a middle-tier or backend application; it typically
	// owns one or two service-directory groups.
	KindService
	// KindBatch is an autonomous system application: it logs background
	// activity but owns no directory entries and drives no sessions.
	KindBatch
)

// String returns a short name of the kind.
func (k AppKind) String() string {
	switch k {
	case KindGUI:
		return "gui"
	case KindService:
		return "service"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// App is one application (log source) of the simulated environment.
type App struct {
	// Name is the log-source identifier.
	Name string
	// Kind classifies the application.
	Kind AppKind
	// Host is the server host the application logs from. GUI applications
	// log from the client machine of the active session instead.
	Host string
	// UnixHost reports whether Host is NTP-synchronized (<1 ms skew); NT
	// hosts are only domain-synchronized (up to ±1 s skew), per §4.2.
	UnixHost bool
	// InvokeStyle indexes the developer's invocation-log format.
	InvokeStyle int
	// ServingStyle indexes the format of server-side logs that cite the
	// served group id, or -1 when the application's serving logs carry no
	// citation. Formats 0..9 are covered by the canonical stop patterns;
	// formats 10 and 11 are not (the two surviving inverted dependencies
	// of §4.8).
	ServingStyle int
	// LogsUserProb is the probability that a serving log carries the user
	// id of the session it serves (making it session-assignable).
	LogsUserProb float64
	// BackgroundWeight is the application's relative share of the
	// background (non-session) log volume.
	BackgroundWeight float64
}

// ServiceGroup is one entry of the simulated service directory.
type ServiceGroup struct {
	// ID is the directory identifier.
	ID string
	// Owner is the name of the application implementing the group.
	Owner string
	// RootURL is the group's root URL.
	RootURL string
	// Services are the exposed function names.
	Services []string
}

// Edge is one ground-truth dependency: Caller invokes the services of
// Group.
type Edge struct {
	// Caller is the name of the invoking application.
	Caller string
	// Group is the id of the invoked service group.
	Group string
	// Weight is the relative invocation frequency of this edge within its
	// caller.
	Weight float64
	// Async marks asynchronous (notification-style) invocations: the
	// callee's activity follows the caller's after a second-scale delay,
	// and the caller does not wait.
	Async bool
	// Logged reports whether the caller logs its invocations at all; seven
	// edges are unlogged (§4.8 false-negative analysis).
	Logged bool
	// WrongID, when non-empty, is the (existing, older) directory id the
	// caller erroneously cites instead of Group; three edges carry it.
	WrongID string
	// Rare marks edges "used extremely seldom": they are never realized in
	// the simulated week (six edges; the paper reclassifies them as true
	// negatives).
	Rare bool
	// StackTraceCite, when non-empty, is the id of a group the callee
	// depends on; failed invocations make the caller log an exception
	// trace citing it (five edges; the transitive false positives of
	// §4.8).
	StackTraceCite string
}

// Pair is an unordered application pair (core.Pair), with A < B.
type Pair = core.Pair

// MakePair returns the normalized unordered pair of a and b.
func MakePair(a, b string) Pair { return core.MakePair(a, b) }

// AppServicePair is a directed application → service-group dependency
// (core.AppServicePair).
type AppServicePair = core.AppServicePair

// Phenomena records the deliberately injected error phenomena so the
// evaluation can report the §4.8 taxonomy against ground truth.
type Phenomena struct {
	// RareEdges are the ground-truth dependencies never realized in the
	// test week.
	RareEdges []AppServicePair
	// UnloggedEdges are realized but never logged by the caller.
	UnloggedEdges []AppServicePair
	// WrongNameEdges are logged under WrongID; the map value is the id
	// actually cited.
	WrongNameEdges map[AppServicePair]string
	// SimilarIDPairs are the (app, group) citations caused by erroneous
	// similar ids — both the WrongName citations and the two spontaneous
	// ones.
	SimilarIDPairs []AppServicePair
	// CoincidencePairs are the (app, group) citations caused by patient
	// names colliding with legacy group ids.
	CoincidencePairs []AppServicePair
	// StackTracePairs are the (caller, citedGroup) transitive citations
	// from exception traces.
	StackTracePairs []AppServicePair
	// InvertedApps are the service applications whose self-citing serving
	// logs are NOT covered by the canonical stop patterns (two apps).
	InvertedApps []string
	// StoppableApps are the service applications whose self-citing serving
	// logs ARE covered by the canonical stop patterns.
	StoppableApps []string
}

// Topology is the simulated environment: applications, service groups, and
// the ground-truth dependency edges.
type Topology struct {
	Apps   []App
	Groups []ServiceGroup
	Edges  []Edge
	// Phenomena describes the injected §4.8 error phenomena.
	Phenomena Phenomena

	appByName   map[string]*App
	groupByID   map[string]*ServiceGroup
	edgesByApp  map[string][]*Edge
	ownerGroups map[string][]*ServiceGroup
}

// reindex rebuilds the lookup maps.
func (t *Topology) reindex() {
	t.appByName = make(map[string]*App, len(t.Apps))
	for i := range t.Apps {
		t.appByName[t.Apps[i].Name] = &t.Apps[i]
	}
	t.groupByID = make(map[string]*ServiceGroup, len(t.Groups))
	t.ownerGroups = make(map[string][]*ServiceGroup)
	for i := range t.Groups {
		g := &t.Groups[i]
		t.groupByID[g.ID] = g
		t.ownerGroups[g.Owner] = append(t.ownerGroups[g.Owner], g)
	}
	t.edgesByApp = make(map[string][]*Edge)
	for i := range t.Edges {
		e := &t.Edges[i]
		t.edgesByApp[e.Caller] = append(t.edgesByApp[e.Caller], e)
	}
}

// App returns the application with the given name, or nil.
func (t *Topology) App(name string) *App { return t.appByName[name] }

// Group returns the service group with the given id, or nil.
func (t *Topology) Group(id string) *ServiceGroup { return t.groupByID[id] }

// EdgesOf returns the outgoing dependency edges of the application.
func (t *Topology) EdgesOf(app string) []*Edge { return t.edgesByApp[app] }

// GroupsOwnedBy returns the groups implemented by the application.
func (t *Topology) GroupsOwnedBy(app string) []*ServiceGroup { return t.ownerGroups[app] }

// AppNames returns all application names in topology order.
func (t *Topology) AppNames() []string {
	out := make([]string, len(t.Apps))
	for i := range t.Apps {
		out[i] = t.Apps[i].Name
	}
	return out
}

// TrueAppServicePairs returns the reference model for approach L3: every
// (application, service-group) dependency, including rare, unlogged and
// wrongly-logged ones (they are real dependencies; whether a technique can
// see them is what the evaluation measures).
func (t *Topology) TrueAppServicePairs() map[AppServicePair]bool {
	out := make(map[AppServicePair]bool, len(t.Edges))
	for _, e := range t.Edges {
		out[AppServicePair{App: e.Caller, Group: e.Group}] = true
	}
	return out
}

// TrueAppPairs returns the reference model for approaches L1 and L2: the
// unordered application pairs that directly interact — every (caller,
// owner-of-called-group) pair.
func (t *Topology) TrueAppPairs() map[Pair]bool {
	out := make(map[Pair]bool)
	for _, e := range t.Edges {
		g := t.groupByID[e.Group]
		if g == nil || g.Owner == e.Caller {
			continue
		}
		out[MakePair(e.Caller, g.Owner)] = true
	}
	return out
}

// Directory builds the service directory document for the topology.
func (t *Topology) Directory() *directory.Directory {
	d := &directory.Directory{Version: 1}
	for _, g := range t.Groups {
		dg := directory.Group{ID: g.ID, RootURL: g.RootURL}
		dg.Replicas = []directory.Replica{{Host: "replica-" + strings.ToLower(g.Owner) + ".hug.local"}}
		for _, s := range g.Services {
			dg.Services = append(dg.Services, directory.Service{Name: s})
		}
		d.Groups = append(d.Groups, dg)
	}
	return d
}

// TopologyConfig controls topology generation. The zero value is replaced
// by DefaultTopologyConfig.
type TopologyConfig struct {
	// GUIEdgesMin/Max bound the number of service groups each GUI
	// application depends on.
	GUIEdgesMin, GUIEdgesMax int
	// TotalEdges is the exact number of ground-truth dependencies to
	// generate (the paper's reference model has 177).
	TotalEdges int
	// AsyncFraction is the fraction of edges with asynchronous semantics.
	AsyncFraction float64
}

// DefaultTopologyConfig mirrors the scale of the paper's reference model:
// 54 applications, 47 service groups, 177 app→service dependencies.
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		GUIEdgesMin:   10,
		GUIEdgesMax:   15,
		TotalEdges:    177,
		AsyncFraction: 0.30,
	}
}

// GenerateTopology builds a deterministic topology for the given seed.
func GenerateTopology(cfg TopologyConfig, seed int64) *Topology {
	if cfg.TotalEdges == 0 {
		cfg = DefaultTopologyConfig()
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Topology{}

	// --- Applications -----------------------------------------------------
	for i, n := range guiAppNames {
		t.Apps = append(t.Apps, App{
			Name:         n,
			Kind:         KindGUI,
			Host:         fmt.Sprintf("client-pool-%02d", i),
			UnixHost:     false,
			InvokeStyle:  rng.Intn(numInvokeStyles),
			ServingStyle: -1,
			LogsUserProb: 1, // GUI logs always carry the user
		})
	}
	for i, n := range serviceAppNames {
		t.Apps = append(t.Apps, App{
			Name:         n,
			Kind:         KindService,
			Host:         fmt.Sprintf("srv%02d.hug.local", i),
			UnixHost:     i%5 != 4, // most service hosts are NTP-synced Unix
			InvokeStyle:  rng.Intn(numInvokeStyles),
			ServingStyle: -1, // assigned below
			LogsUserProb: 0.06 + 0.1*rng.Float64(),
		})
	}
	for i, n := range batchAppNames {
		t.Apps = append(t.Apps, App{
			Name:         n,
			Kind:         KindBatch,
			Host:         fmt.Sprintf("batch%02d.hug.local", i),
			UnixHost:     true,
			InvokeStyle:  rng.Intn(numInvokeStyles),
			ServingStyle: -1,
			LogsUserProb: 0,
		})
	}

	// Background volume shares. The bulk of the autonomous noise lives on
	// the batch applications (archivers, gateways, collectors); service
	// applications log mostly in reaction to requests, so their streams
	// stay interaction-dominated — the regime in which the paper's L1
	// technique can separate dependent pairs from random activity.
	for i := range t.Apps {
		a := &t.Apps[i]
		base := 0.3 + rng.Float64()
		switch a.Kind {
		case KindGUI:
			a.BackgroundWeight = 0.01 * base // GUI apps log almost only in sessions
		case KindService:
			a.BackgroundWeight = 0.25 * base * base // light, heavy-tailed
		case KindBatch:
			a.BackgroundWeight = 10 * base
		}
	}

	// --- Service groups ---------------------------------------------------
	// 37 service apps own one group; 7 of these groups carry legacy
	// codename ids. 3 apps own an old+new versioned pair; 4 apps own a
	// primary + secondary group. 37 + 6 + 8 − 4 = 47 groups.
	serviceApps := make([]string, len(serviceAppNames))
	copy(serviceApps, serviceAppNames)
	mkGroup := func(id, owner string) ServiceGroup {
		nsvc := 2 + rng.Intn(3)
		svcs := make([]string, 0, nsvc)
		seen := map[string]bool{}
		for len(svcs) < nsvc {
			name := serviceVerbs[rng.Intn(len(serviceVerbs))] + serviceNouns[rng.Intn(len(serviceNouns))]
			if !seen[name] {
				seen[name] = true
				svcs = append(svcs, name)
			}
		}
		sort.Strings(svcs)
		return ServiceGroup{
			ID:       id,
			Owner:    owner,
			RootURL:  fmt.Sprintf("http://%s.hug.local:8%03d/%s", strings.ToLower(owner), rng.Intn(1000), strings.ToLower(id)),
			Services: svcs,
		}
	}
	// The first 26 service apps own one group named after them (so flagship
	// names like DPIPUBLICATION exist as directory entries).
	for _, owner := range serviceApps[:26] {
		t.Groups = append(t.Groups, mkGroup(strings.ToUpper(owner), owner))
	}
	// Four apps own a primary + secondary group.
	for i := 26; i < 30; i++ {
		owner := serviceApps[i]
		t.Groups = append(t.Groups, mkGroup(strings.ToUpper(owner), owner))
		t.Groups = append(t.Groups, mkGroup(strings.ToUpper(owner)+"ARCHIVE", owner))
	}
	// Seven apps own a legacy-codename group (project codenames that double
	// as patient surnames).
	for i, id := range legacyGroupIDs {
		t.Groups = append(t.Groups, mkGroup(id, serviceApps[30+i]))
	}
	// Three apps own an old+new versioned pair (UPSRV/UPSRV2 style).
	for i, base := range versionedGroupBases {
		owner := serviceApps[37+i]
		t.Groups = append(t.Groups, mkGroup(base, owner))
		t.Groups = append(t.Groups, mkGroup(base+"2", owner))
	}

	t.reindex()

	// --- Edges ------------------------------------------------------------
	// Popularity weights over groups (heavy-tailed): popular infrastructure
	// groups are used by many applications.
	popularity := make(map[string]float64, len(t.Groups))
	for _, g := range t.Groups {
		w := rng.Float64()
		popularity[g.ID] = w * w * w
	}
	// Old-version groups are unpopular: their remaining users are legacy.
	for _, base := range versionedGroupBases {
		popularity[base] *= 0.05
	}

	// groupIDs is sorted once: both the weight total and the roulette scan
	// below must accumulate floats in a fixed order, or the sum's rounding
	// (and with it the picked group) would vary with map iteration order
	// across processes despite the fixed seed.
	groupIDs := make([]string, 0, len(popularity))
	for id := range popularity {
		groupIDs = append(groupIDs, id)
	}
	sort.Strings(groupIDs)

	pickGroup := func(exclude func(string) bool) string {
		var total float64
		for _, id := range groupIDs {
			if !exclude(id) {
				total += popularity[id]
			}
		}
		if total == 0 {
			return ""
		}
		x := rng.Float64() * total
		for _, id := range groupIDs {
			if exclude(id) {
				continue
			}
			x -= popularity[id]
			if x <= 0 {
				return id
			}
		}
		return ""
	}

	edgeSet := make(map[AppServicePair]bool)
	addEdge := func(caller, group string) bool {
		g := t.groupByID[group]
		if g == nil {
			return false
		}
		p := AppServicePair{App: caller, Group: group}
		if edgeSet[p] || caller == g.Owner {
			return false
		}
		edgeSet[p] = true
		w := 0.2 + rng.ExpFloat64()
		t.Edges = append(t.Edges, Edge{
			Caller: caller,
			Group:  group,
			Weight: w,
			Async:  rng.Float64() < cfg.AsyncFraction,
			Logged: true,
		})
		return true
	}

	// GUI applications call many groups.
	for _, n := range guiAppNames {
		k := cfg.GUIEdgesMin + rng.Intn(cfg.GUIEdgesMax-cfg.GUIEdgesMin+1)
		for added := 0; added < k; {
			g := pickGroup(func(id string) bool {
				return edgeSet[AppServicePair{App: n, Group: id}]
			})
			if g == "" {
				break
			}
			if addEdge(n, g) {
				added++
			}
		}
	}
	// Figure 1 of the paper shows DPIFormidoc calling DPIPublication;
	// guarantee that flavor pair exists with a high weight so the example
	// and eval.Figure1 always have a strongly interacting pair to show.
	addEdge("DPIFormidoc", "DPIPUBLICATION")
	for i := range t.Edges {
		if t.Edges[i].Caller == "DPIFormidoc" && t.Edges[i].Group == "DPIPUBLICATION" {
			t.Edges[i].Weight = 3
			t.Edges[i].Async = false
		}
	}

	// Service applications call a few groups of other owners (transitive
	// chains).
	for _, n := range serviceApps {
		k := rng.Intn(3) // 0..2
		for added := 0; added < k; {
			g := pickGroup(func(id string) bool {
				return t.groupByID[id].Owner == n ||
					edgeSet[AppServicePair{App: n, Group: id}]
			})
			if g == "" {
				break
			}
			if addEdge(n, g) {
				added++
			}
		}
	}
	// Pad or trim to the exact edge budget.
	for len(t.Edges) < cfg.TotalEdges {
		caller := serviceApps[rng.Intn(len(serviceApps))]
		g := pickGroup(func(id string) bool {
			return t.groupByID[id].Owner == caller ||
				edgeSet[AppServicePair{App: caller, Group: id}]
		})
		if g == "" {
			continue
		}
		addEdge(caller, g)
	}
	if len(t.Edges) > cfg.TotalEdges {
		t.Edges = t.Edges[:cfg.TotalEdges]
	}
	t.reindex()
	ensureAllGroupsTargeted(t)
	t.reindex()

	assignPhenomena(t, rng)
	assignServingStyles(t, rng)
	t.reindex()
	return t
}

// assignPhenomena marks specific edges and applications with the §4.8 error
// phenomena, with the same cardinalities as the paper's analysis.
func assignPhenomena(t *Topology, rng *rand.Rand) {
	ph := &t.Phenomena
	ph.WrongNameEdges = make(map[AppServicePair]string)

	// Sort candidate edge indexes by weight ascending so that "special"
	// edges are low-traffic ones, as in the paper's narrative.
	idx := make([]int, len(t.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.Edges[idx[a]].Weight < t.Edges[idx[b]].Weight })
	// Track callers per group: an edge that is its group's only caller must
	// keep generating traffic, or the group's owner would never serve and
	// the §4.8 inverted-dependency accounting would fall short.
	incoming := make(map[string]int, len(t.Groups))
	for _, e := range t.Edges {
		incoming[e.Group]++
	}
	next := 0
	take := func() *Edge {
		for next < len(idx) {
			e := &t.Edges[idx[next]]
			next++
			if !e.Rare && e.Logged && e.WrongID == "" && incoming[e.Group] >= 2 {
				return e
			}
		}
		return nil
	}

	// Three wrong-name edges (assigned first, so the rare/unlogged passes
	// below cannot collide with them): ensure an edge to each new-version
	// group and cite the old id instead. The citation is a dependency claim
	// on the old group → both a false negative (new group missed) and a
	// similar-id false positive (old group claimed).
	for i, base := range versionedGroupBases {
		newID := base + "2"
		caller := guiAppNames[i] // a distinct GUI app per versioned service
		p := AppServicePair{App: caller, Group: newID}
		found := false
		for j := range t.Edges {
			if t.Edges[j].Caller == caller && t.Edges[j].Group == newID {
				found = true
				t.Edges[j].WrongID = base
				t.Edges[j].Rare = false
				t.Edges[j].Logged = true
			}
		}
		if !found {
			// Replace this caller's lowest-weight edge to keep the budget,
			// never stealing a group's only caller.
			best := -1
			for j := range t.Edges {
				if t.Edges[j].Caller != caller || t.Edges[j].Rare || !t.Edges[j].Logged ||
					t.Edges[j].WrongID != "" || t.Edges[j].StackTraceCite != "" ||
					incoming[t.Edges[j].Group] < 2 {
					continue
				}
				if best == -1 || t.Edges[j].Weight < t.Edges[best].Weight {
					best = j
				}
			}
			e := &t.Edges[best]
			incoming[e.Group]--
			incoming[newID]++
			e.Group = newID
			e.WrongID = base
			e.Weight = 0.4 + 0.3*rng.Float64()
			e.Async = false
		}
		ph.WrongNameEdges[p] = base
		ph.SimilarIDPairs = append(ph.SimilarIDPairs, AppServicePair{App: caller, Group: base})
	}

	// Six rare edges (never realized in the test week). Rare edges stop
	// producing traffic, so they must not be their group's only caller.
	for i := 0; i < 6; i++ {
		if e := take(); e != nil {
			e.Rare = true
			incoming[e.Group]--
			ph.RareEdges = append(ph.RareEdges, AppServicePair{App: e.Caller, Group: e.Group})
		}
	}
	// Seven unlogged edges.
	for i := 0; i < 7; i++ {
		if e := take(); e != nil {
			e.Logged = false
			ph.UnloggedEdges = append(ph.UnloggedEdges, AppServicePair{App: e.Caller, Group: e.Group})
		}
	}
	// Two spontaneous similar-id citations: GUI apps that occasionally cite
	// a sibling group id they do not use. Pick sibling = another group of
	// an owner they DO call, which they do not call themselves.
	similar := 0
	for _, gui := range guiAppNames[3:] {
		if similar >= 2 {
			break
		}
		p, ok := findSiblingPair(t, gui, ph.SimilarIDPairs)
		if !ok {
			continue
		}
		ph.SimilarIDPairs = append(ph.SimilarIDPairs, p)
		similar++
	}

	// Seven coincidence pairs: one GUI app per legacy group id, chosen so
	// the app does not depend on the group.
	for i, id := range legacyGroupIDs {
		for off := 0; off < len(guiAppNames); off++ {
			app := guiAppNames[(i+2+off)%len(guiAppNames)]
			p := AppServicePair{App: app, Group: id}
			if t.hasEdge(p) || containsPair(ph.CoincidencePairs, p) {
				continue
			}
			ph.CoincidencePairs = append(ph.CoincidencePairs, p)
			break
		}
	}

	// Five stack-trace pairs: edges A→S where owner(S) has its own edge to
	// T; failed calls make A log a trace citing T (and A must not really
	// depend on T).
	count := 0
	for i := range t.Edges {
		if count >= 5 {
			break
		}
		e := &t.Edges[i]
		if !e.Logged || e.Rare || e.WrongID != "" {
			continue
		}
		owner := t.groupByID[e.Group].Owner
		for _, sub := range t.EdgesOf(owner) {
			if sub.Rare {
				continue
			}
			p := AppServicePair{App: e.Caller, Group: sub.Group}
			// The cited group must be neither a real dependency of the
			// caller nor owned by it (that would be an inverted, not a
			// transitive, false positive), and must not coincide with a
			// pair already claimed by another phenomenon.
			if t.hasEdge(p) || t.groupByID[sub.Group].Owner == e.Caller ||
				containsPair(ph.SimilarIDPairs, p) ||
				containsPair(ph.CoincidencePairs, p) ||
				containsPair(ph.StackTracePairs, p) {
				continue
			}
			e.StackTraceCite = sub.Group
			if e.Weight < 1 {
				// The failure evidence needs enough traffic to surface at
				// least once a week at realistic failure rates.
				e.Weight = 1
			}
			ph.StackTracePairs = append(ph.StackTracePairs, p)
			count++
			break
		}
	}
}

// ensureAllGroupsTargeted retargets surplus edges so that every service
// group has at least one caller: a directory entry nobody invokes would
// leave its owner without serving traffic, starving both the §4.8 ablation
// (24 inverted dependencies without stop patterns) and the week-union
// realization the paper's false-negative analysis relies on.
func ensureAllGroupsTargeted(t *Topology) {
	incoming := make(map[string]int, len(t.Groups))
	for _, e := range t.Edges {
		incoming[e.Group]++
	}
	for gi := range t.Groups {
		g := &t.Groups[gi]
		if incoming[g.ID] > 0 {
			continue
		}
		// Steal the lowest-weight edge whose target keeps ≥ 2 callers and
		// whose caller can legally call g.
		best := -1
		for i := range t.Edges {
			e := &t.Edges[i]
			if incoming[e.Group] < 2 || e.Caller == g.Owner {
				continue
			}
			if e.Caller == "DPIFormidoc" && e.Group == "DPIPUBLICATION" {
				continue // the guaranteed figure-1 pair
			}
			if t.hasEdge(AppServicePair{App: e.Caller, Group: g.ID}) {
				continue
			}
			if best == -1 || e.Weight < t.Edges[best].Weight {
				best = i
			}
		}
		if best >= 0 {
			incoming[t.Edges[best].Group]--
			t.Edges[best].Group = g.ID
			incoming[g.ID]++
			t.reindex()
		}
	}
}

// findSiblingPair returns an (app, group) pair where group is a sibling
// group (same owner) of one the app calls, but the app neither calls it nor
// already has it recorded — the shape of a plausible copy-paste citation
// error.
func findSiblingPair(t *Topology, app string, taken []AppServicePair) (AppServicePair, bool) {
	for _, e := range t.EdgesOf(app) {
		owner := t.groupByID[e.Group].Owner
		for _, sib := range t.GroupsOwnedBy(owner) {
			if sib.ID == e.Group {
				continue
			}
			p := AppServicePair{App: app, Group: sib.ID}
			if t.hasEdge(p) || containsPair(taken, p) {
				continue
			}
			return p, true
		}
	}
	return AppServicePair{}, false
}

// containsPair reports whether pairs contains p.
func containsPair(pairs []AppServicePair, p AppServicePair) bool {
	for _, q := range pairs {
		if q == p {
			return true
		}
	}
	return false
}

// hasEdge reports whether the ground truth contains the dependency.
func (t *Topology) hasEdge(p AppServicePair) bool {
	for _, e := range t.edgesByApp[p.App] {
		if e.Group == p.Group {
			return true
		}
	}
	return false
}

// assignServingStyles gives 24 group owners self-citing serving-log
// formats: 22 in formats covered by the canonical stop patterns, 2 in
// formats that are not (the inverted false positives of §4.8). Only owners
// of exactly one group are styled, so the number of self-cited (app, group)
// pairs equals the number of styled applications — 24 inverted dependencies
// without stop patterns, 2 with, as in the paper.
func assignServingStyles(t *Topology, rng *rand.Rand) {
	var owners []string
	for o, gs := range t.ownerGroups {
		if len(gs) == 1 {
			owners = append(owners, o)
		}
	}
	sort.Strings(owners)
	rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })
	ph := &t.Phenomena
	for i, o := range owners {
		a := t.appByName[o]
		switch {
		case i < 2:
			a.ServingStyle = numStoppableServingStyles + i%numUnstoppableServingStyles
			ph.InvertedApps = append(ph.InvertedApps, o)
		case i < 24:
			a.ServingStyle = i % numStoppableServingStyles
			ph.StoppableApps = append(ph.StoppableApps, o)
		default:
			a.ServingStyle = -1 // serving logs carry no group citation
		}
	}
	sort.Strings(ph.InvertedApps)
	sort.Strings(ph.StoppableApps)
}
