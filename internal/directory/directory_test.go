package directory

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleDir() *Directory {
	return &Directory{
		Version: 1,
		Groups: []Group{
			{
				ID:      "DPINOTIFICATION",
				RootURL: "http://myserver.hcuge.ch:9999/myurl",
				Replicas: []Replica{
					{Host: "backup1.hcuge.ch"},
				},
				Services: []Service{{Name: "notify"}, {Name: "subscribe"}},
			},
			{
				ID:       "UPSRV",
				RootURL:  "http://upsrv.hcuge.ch/up",
				Services: []Service{{Name: "lookup"}},
			},
			{
				ID:       "UPSRV2",
				RootURL:  "http://upsrv2.hcuge.ch/up2",
				Services: []Service{{Name: "lookup"}},
			},
		},
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := sampleDir()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<?xml`) || !strings.Contains(out, `id="DPINOTIFICATION"`) {
		t.Errorf("XML output:\n%s", out)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 3 {
		t.Fatalf("groups = %d", len(got.Groups))
	}
	if !reflect.DeepEqual(got.Groups[0].ServiceNames(), []string{"notify", "subscribe"}) {
		t.Errorf("services = %v", got.Groups[0].ServiceNames())
	}
	if got.Groups[0].Replicas[0].Host != "backup1.hcuge.ch" {
		t.Errorf("replica = %+v", got.Groups[0].Replicas)
	}
	if got.Version != 1 {
		t.Errorf("version = %d", got.Version)
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	cases := []string{
		`not xml at all`,
		`<serviceDirectory version="1"><group id="" rootURL="http://x/y"><service name="a"/></group></serviceDirectory>`,
		`<serviceDirectory version="1"><group id="A" rootURL="http://x/y"><service name="a"/></group><group id="A" rootURL="http://x/z"><service name="b"/></group></serviceDirectory>`,
		`<serviceDirectory version="1"><group id="A" rootURL=""><service name="a"/></group></serviceDirectory>`,
		`<serviceDirectory version="1"><group id="A" rootURL="http://x/y"></group></serviceDirectory>`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLookupAndIDs(t *testing.T) {
	d := sampleDir()
	if g := d.Lookup("UPSRV"); g == nil || g.RootURL != "http://upsrv.hcuge.ch/up" {
		t.Errorf("Lookup = %+v", g)
	}
	if g := d.Lookup("MISSING"); g != nil {
		t.Errorf("Lookup missing = %+v", g)
	}
	ids := d.GroupIDs()
	if !reflect.DeepEqual(ids, []string{"DPINOTIFICATION", "UPSRV", "UPSRV2"}) {
		t.Errorf("GroupIDs = %v", ids)
	}
}

func TestGroupHost(t *testing.T) {
	d := sampleDir()
	if h := d.Groups[0].Host(); h != "myserver.hcuge.ch:9999" {
		t.Errorf("Host = %q", h)
	}
	if h := (Group{RootURL: "://bad"}).Host(); h != "" {
		t.Errorf("bad URL Host = %q", h)
	}
}

func TestCitationsByID(t *testing.T) {
	cs := NewCitationScanner(sampleDir(), nil)
	// The two example messages from §3.3.
	got := cs.Citations("Invoke externalService [fct [notify] server [myserver.hcuge.ch:9999/myurl]]")
	if !reflect.DeepEqual(got, []string{"DPINOTIFICATION"}) {
		t.Errorf("URL citation = %v", got)
	}
	got = cs.Citations("(DPINOTIFICATION) notify( $myparams )")
	if !reflect.DeepEqual(got, []string{"DPINOTIFICATION"}) {
		t.Errorf("id citation = %v", got)
	}
}

func TestCitationsWordBoundary(t *testing.T) {
	cs := NewCitationScanner(sampleDir(), nil)
	// UPSRV2 cited: must NOT report UPSRV (the §4.8 wrong-name scenario in
	// reverse — the matcher itself must not conflate prefixed ids).
	got := cs.Citations("calling UPSRV2.lookup for patient 123")
	if !reflect.DeepEqual(got, []string{"UPSRV2"}) {
		t.Errorf("citations = %v", got)
	}
	got = cs.Citations("calling UPSRV.lookup for patient 123")
	if !reflect.DeepEqual(got, []string{"UPSRV"}) {
		t.Errorf("citations = %v", got)
	}
}

func TestCitationsMultiple(t *testing.T) {
	cs := NewCitationScanner(sampleDir(), nil)
	got := cs.Citations("chain: UPSRV then (DPINOTIFICATION) done")
	if !reflect.DeepEqual(got, []string{"DPINOTIFICATION", "UPSRV"}) {
		t.Errorf("citations = %v", got)
	}
	if got := cs.Citations("no services mentioned"); got != nil {
		t.Errorf("citations = %v", got)
	}
	// Duplicate mentions collapse.
	got = cs.Citations("UPSRV UPSRV UPSRV")
	if !reflect.DeepEqual(got, []string{"UPSRV"}) {
		t.Errorf("citations = %v", got)
	}
}

func TestStopPatterns(t *testing.T) {
	stops := []StopPattern{
		{Source: "NotificationServer", Contains: "serving"},
		{Contains: "handled request"},
	}
	cs := NewCitationScanner(sampleDir(), stops)
	if !cs.Stopped("NotificationServer", "serving notify for DPINOTIFICATION") {
		t.Error("source+contains stop should match")
	}
	if cs.Stopped("OtherApp", "serving notify for DPINOTIFICATION") {
		t.Error("source-restricted stop should not match other source")
	}
	if !cs.Stopped("AnyApp", "handled request (UPSRV)") {
		t.Error("contains-only stop should match any source")
	}
	if cs.Stopped("AnyApp", "plain client invocation (UPSRV)") {
		t.Error("no stop should match")
	}
	if got := cs.Stops(); len(got) != 2 {
		t.Errorf("Stops = %v", got)
	}
}

func TestStopPatternEmpty(t *testing.T) {
	// A fully empty pattern matches nothing (guard against accidental
	// drop-everything configuration).
	p := StopPattern{}
	if p.Matches("A", "anything") {
		t.Error("empty pattern must not match")
	}
	if s := p.String(); !strings.Contains(s, "stop{") {
		t.Errorf("String = %q", s)
	}
}

func TestCitationScannerEmptyDirectory(t *testing.T) {
	cs := NewCitationScanner(&Directory{}, nil)
	if got := cs.Citations("anything at all"); got != nil {
		t.Errorf("citations = %v", got)
	}
}
