package directory

// Native fuzz coverage for the service-directory XML reader. Seed corpora
// live under testdata/fuzz/.

import (
	"bytes"
	"testing"
)

// FuzzReadDirectory feeds arbitrary bytes to the XML reader. The
// invariants: Read never panics; any directory it accepts has passed
// Validate (non-empty unique ids, parseable URLs, ≥1 service per group) and
// survives a Write/Read round trip with identical structure.
func FuzzReadDirectory(f *testing.F) {
	f.Add([]byte(`<serviceDirectory version="3">
  <group id="DPINOTIFICATION" rootURL="http://dpi-srv1:8080/notification">
    <replica host="dpi-srv2"/>
    <service name="notifyPatientAdmitted"/>
    <service name="notifyPatientDischarged"/>
  </group>
  <group id="UPSRV" rootURL="http://upsrv:9000/user">
    <service name="lookupUser"/>
  </group>
</serviceDirectory>`))
	f.Add([]byte(`<serviceDirectory version="1"><group id="A" rootURL="http://h/p"><service name="s"/></group></serviceDirectory>`))
	f.Add([]byte(`<serviceDirectory version="1"></serviceDirectory>`))
	f.Add([]byte(`<serviceDirectory version="1"><group id="" rootURL=""/></serviceDirectory>`))
	f.Add([]byte(`not xml at all`))
	f.Add([]byte(`<serviceDirectory version="1"><group id="A" rootURL="http://h"><service name="s"/></group><group id="A" rootURL="http://h"><service name="s"/></group></serviceDirectory>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed or invalid input is rejected, not a bug
		}
		if err := dir.Validate(); err != nil {
			t.Fatalf("Read accepted a directory that fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := dir.Write(&buf); err != nil {
			t.Fatalf("write accepted directory: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("reread written directory: %v\nxml:\n%s", err, buf.String())
		}
		if len(again.Groups) != len(dir.Groups) {
			t.Fatalf("round trip changed group count: %d -> %d", len(dir.Groups), len(again.Groups))
		}
		for i, g := range dir.Groups {
			h := again.Groups[i]
			if g.ID != h.ID || g.RootURL != h.RootURL ||
				len(g.Services) != len(h.Services) || len(g.Replicas) != len(h.Replicas) {
				t.Fatalf("round trip changed group %d:\n was %+v\n now %+v", i, g, h)
			}
		}
	})
}
