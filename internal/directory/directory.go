package directory

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strings"

	"logscape/internal/textproc"
)

// Group is one service-directory entry: a group of functionally related
// services sharing a root URL.
type Group struct {
	// ID is the directory identifier, e.g. DPINOTIFICATION.
	ID string `xml:"id,attr"`
	// RootURL is the root URL of the group's services.
	RootURL string `xml:"rootURL,attr"`
	// Replicas are alternative hosts serving the group.
	Replicas []Replica `xml:"replica"`
	// Services are the function names exposed by the group.
	Services []Service `xml:"service"`
}

// Replica is one replication target of a group.
type Replica struct {
	Host string `xml:"host,attr"`
}

// Service is one service function within a group.
type Service struct {
	Name string `xml:"name,attr"`
}

// ServiceNames returns the function names of the group.
func (g Group) ServiceNames() []string {
	out := make([]string, len(g.Services))
	for i, s := range g.Services {
		out[i] = s.Name
	}
	return out
}

// Host returns the host part of the group's root URL, or "" if the URL does
// not parse.
func (g Group) Host() string {
	u, err := url.Parse(g.RootURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// Directory is a service directory: the ordered set of service groups.
type Directory struct {
	XMLName xml.Name `xml:"serviceDirectory"`
	Version int      `xml:"version,attr"`
	Groups  []Group  `xml:"group"`
}

// GroupIDs returns the ids of all groups in directory order.
func (d *Directory) GroupIDs() []string {
	out := make([]string, len(d.Groups))
	for i, g := range d.Groups {
		out[i] = g.ID
	}
	return out
}

// Lookup returns the group with the given id, or nil.
func (d *Directory) Lookup(id string) *Group {
	for i := range d.Groups {
		if d.Groups[i].ID == id {
			return &d.Groups[i]
		}
	}
	return nil
}

// Validate checks structural invariants: non-empty unique ids, parseable
// root URLs, and at least one service per group.
func (d *Directory) Validate() error {
	seen := make(map[string]bool, len(d.Groups))
	for _, g := range d.Groups {
		if g.ID == "" {
			return fmt.Errorf("directory: group with empty id")
		}
		if seen[g.ID] {
			return fmt.Errorf("directory: duplicate group id %q", g.ID)
		}
		seen[g.ID] = true
		if _, err := url.Parse(g.RootURL); err != nil || g.RootURL == "" {
			return fmt.Errorf("directory: group %s: bad root URL %q", g.ID, g.RootURL)
		}
		if len(g.Services) == 0 {
			return fmt.Errorf("directory: group %s: no services", g.ID)
		}
	}
	return nil
}

// Write marshals the directory as indented XML with a header.
func (d *Directory) Write(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Read unmarshals a directory from XML and validates it.
func Read(r io.Reader) (*Directory, error) {
	var d Directory
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("directory: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// StopPattern suppresses logs that would otherwise be read as client-side
// invocation logs (§3.3): typically the callee's own log of serving a
// request, which cites its own group and would invert the dependency
// direction. A log matches when its source equals Source (if non-empty) and
// its message contains Contains (if non-empty, word-insensitive substring).
type StopPattern struct {
	// Source restricts the pattern to logs of this source; empty matches
	// any source.
	Source string
	// Contains is a substring the message must contain.
	Contains string
}

// Matches reports whether the pattern suppresses a log with the given
// source and message.
func (p StopPattern) Matches(source, message string) bool {
	if p.Source != "" && p.Source != source {
		return false
	}
	if p.Contains != "" && !strings.Contains(message, p.Contains) {
		return false
	}
	return p.Source != "" || p.Contains != ""
}

// String renders the pattern for diagnostics.
func (p StopPattern) String() string {
	return fmt.Sprintf("stop{source=%q contains=%q}", p.Source, p.Contains)
}

// CitationScanner finds directory-entry citations in free text. It matches
// group ids word-bounded and root-URL host/path fragments by substring,
// using one Aho–Corasick pass per message.
type CitationScanner struct {
	dir *Directory
	// idMatcher matches group ids; pattern i ↦ group index idGroup[i].
	idMatcher *textproc.Matcher
	idGroup   []int
	// urlMatcher matches URL fragments; pattern i ↦ group index urlGroup[i].
	urlMatcher *textproc.Matcher
	urlGroup   []int
	stops      []StopPattern
}

// NewCitationScanner builds a scanner for the directory with the given stop
// patterns.
func NewCitationScanner(d *Directory, stops []StopPattern) *CitationScanner {
	var idPats []string
	var idGroup []int
	var urlPats []string
	var urlGroup []int
	for gi, g := range d.Groups {
		idPats = append(idPats, g.ID)
		idGroup = append(idGroup, gi)
		if frag := urlFragment(g.RootURL); frag != "" {
			urlPats = append(urlPats, frag)
			urlGroup = append(urlGroup, gi)
		}
	}
	return &CitationScanner{
		dir:        d,
		idMatcher:  textproc.NewMatcher(idPats),
		idGroup:    idGroup,
		urlMatcher: textproc.NewMatcher(urlPats),
		urlGroup:   urlGroup,
		stops:      stops,
	}
}

// urlFragment extracts the "host:port/path" fragment of a root URL that
// developers typically paste into invocation logs.
func urlFragment(root string) string {
	u, err := url.Parse(root)
	if err != nil || u.Host == "" {
		return ""
	}
	return u.Host + u.Path
}

// Stops returns the scanner's stop patterns.
func (cs *CitationScanner) Stops() []StopPattern { return cs.stops }

// Stopped reports whether a log from source with the given message is
// suppressed by a stop pattern.
func (cs *CitationScanner) Stopped(source, message string) bool {
	for _, p := range cs.stops {
		if p.Matches(source, message) {
			return true
		}
	}
	return false
}

// Citations returns the ids of the directory groups cited in message,
// sorted and de-duplicated, ignoring stop patterns (the caller decides when
// to apply Stopped). It returns nil when nothing is cited.
func (cs *CitationScanner) Citations(message string) []string {
	var ids map[string]bool
	for _, pi := range cs.idMatcher.FindSetWordBounded(message) {
		if ids == nil {
			ids = make(map[string]bool, 2)
		}
		ids[cs.dir.Groups[cs.idGroup[pi]].ID] = true
	}
	for _, pi := range cs.urlMatcher.FindSet(message) {
		if ids == nil {
			ids = make(map[string]bool, 2)
		}
		ids[cs.dir.Groups[cs.urlGroup[pi]].ID] = true
	}
	if ids == nil {
		return nil
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
