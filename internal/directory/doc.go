// Package directory models the service directory approach L3 mines against.
//
// At HUG the directory is "basically an XML file indicating the root URL of
// groups of functionally related services. All service groups have an
// identifier, as well as information related to replication issues" (§3.3).
// This package reproduces that shape: a Directory is a set of Groups, each
// with an identifier, a root URL, replica hosts, and the service (function)
// names it exposes; it marshals to and from an XML file.
//
// The CitationScanner finds references to directory entries in the free
// text of log messages — by group id (word-bounded, so UPSRV does not fire
// inside UPSRV2) or by root-URL fragment — and applies stop patterns to
// suppress server-side logs (§3.3, "Stop Patterns").
//
// See DESIGN.md §3 (System inventory).
package directory
