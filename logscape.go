// Package logscape discovers dependency models of distributed systems by
// mining centralized logs. It is a complete, self-contained implementation
// of the three techniques of Steinle, Aberer, Girdzijauskas and Lovis,
// "Mapping Moving Landscapes by Mining Mountains of Logs: Novel Techniques
// for Dependency Model Generation" (VLDB 2006), together with the
// evaluation environment of the paper's case study.
//
// # Techniques
//
//   - L1 — logs as an activity measure (§3.1): for every application pair,
//     a robust order-statistics test compares the distance of one
//     application's log timestamps to the nearest log of the other against
//     uniformly random points, locally per time slot. Requires only
//     (source, timestamp) — works on virtually any log stream.
//   - L2 — co-occurrence statistics over user sessions (§3.2): adjacent-log
//     bigrams within reconstructed user sessions are tested for association
//     with Dunning's log-likelihood ratio, as in collocation extraction.
//     Requires user/host fields for session creation.
//   - L3 — free-text analysis against a service directory (§3.3): citations
//     of directory entries in log messages directly yield application →
//     service dependencies; stop patterns suppress server-side echoes.
//     The most precise of the three wherever a service directory exists.
//
// The delay-histogram technique of Agrawal et al., the closest related
// work, is provided as a baseline in the same interface.
//
// # Layout
//
// The facade re-exports the main entry points; the implementation lives in
// the internal packages:
//
//	internal/logmodel   log entries, wire format, store
//	internal/stats      order-statistic CIs, G², Wilcoxon, regression, ...
//	internal/pointproc  nearest-distance, Poisson processes, sampling
//	internal/textproc   Aho–Corasick matching, tokenizer, SLCT clustering
//	internal/directory  service directory (XML), citation scanner
//	internal/sessions   user-session creation
//	internal/core       dependency-model vocabulary; l1, l2, l3 miners
//	internal/stream     sliding-window incremental mining (depmine -follow)
//	internal/baseline   Agrawal et al. delay-histogram baseline
//	internal/hospital   the simulated HUG environment (ground truth)
//	internal/eval       the paper's §4 experiments (tables 1–2, figures 1–9)
//
// # Quick start
//
// Parse a log stream, load the service directory, and mine:
//
//	store, _ := logscape.ReadLogs(file)
//	dir, _ := logscape.ReadDirectory(xmlFile)
//	miner := logscape.NewL3Miner(dir, logscape.L3Config{})
//	deps := miner.Mine(store, logscape.TimeRange{}).Dependencies()
//
// See examples/ for complete programs and cmd/ for the command-line tools.
package logscape

import (
	"io"

	"logscape/internal/baseline"
	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/depgraph"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

// Log-model types.
type (
	// Entry is one log message (timestamp, source, host, user, severity,
	// free text).
	Entry = logmodel.Entry
	// Store is an in-memory, time-ordered log collection with the indexes
	// the miners need.
	Store = logmodel.Store
	// TimeRange is a half-open interval of Millis.
	TimeRange = logmodel.TimeRange
	// Millis is a timestamp in milliseconds since the Unix epoch.
	Millis = logmodel.Millis
	// Severity is a log level.
	Severity = logmodel.Severity
)

// Dependency-model types.
type (
	// Pair is an unordered application pair (the element of L1/L2 models).
	Pair = core.Pair
	// AppServicePair is a directed application → service dependency (the
	// element of L3 models).
	AppServicePair = core.AppServicePair
	// PairSet is a set of application pairs.
	PairSet = core.PairSet
	// AppServiceSet is a set of application → service dependencies.
	AppServiceSet = core.AppServiceSet
	// Confusion compares a mined model against a reference model.
	Confusion = core.Confusion
)

// Technique configurations and results.
type (
	// L1Config parameterizes the activity-measure miner.
	L1Config = l1.Config
	// L1Result is the mined model of approach L1.
	L1Result = l1.Result
	// L2Config parameterizes the session co-occurrence miner.
	L2Config = l2.Config
	// L2Result is the mined model of approach L2.
	L2Result = l2.Result
	// L3Config parameterizes the free-text citation miner.
	L3Config = l3.Config
	// L3Result is the mined model of approach L3.
	L3Result = l3.Result
	// L3Miner is a reusable L3 miner bound to one service directory.
	L3Miner = l3.Miner
	// BaselineConfig parameterizes the Agrawal et al. delay-histogram
	// baseline.
	BaselineConfig = baseline.Config
	// BaselineResult is the baseline's mined model.
	BaselineResult = baseline.Result
)

// Session types.
type (
	// Session is one reconstructed user session.
	Session = sessions.Session
	// SessionConfig parameterizes session creation.
	SessionConfig = sessions.Config
	// SessionStats summarizes a session-creation run.
	SessionStats = sessions.Stats
)

// Directory types.
type (
	// Directory is a service directory document.
	Directory = directory.Directory
	// ServiceGroup is one directory entry.
	ServiceGroup = directory.Group
	// StopPattern suppresses server-side logs in L3.
	StopPattern = directory.StopPattern
)

// Streaming types: bounded-memory incremental mining over a sliding window
// of log buckets, batch-equivalent by construction (DESIGN.md §9).
type (
	// StreamConfig parameterizes the sliding window (bucket width, window
	// size, workers).
	StreamConfig = stream.Config
	// StreamBucket is one closed ingest bucket.
	StreamBucket = stream.Bucket
	// StreamMiner is an incremental miner over the sliding window.
	StreamMiner = stream.Miner
	// Ingester cuts a log stream into buckets and advances stream miners.
	Ingester = stream.Ingester
	// IngestStats summarizes an ingestion run.
	IngestStats = stream.IngestStats
)

// NewIngester returns an ingester feeding the given stream miners.
func NewIngester(cfg StreamConfig, miners ...StreamMiner) *Ingester {
	return stream.NewIngester(cfg, miners...)
}

// NewL1Stream builds the incremental L1 miner (one L1 slot per bucket).
func NewL1Stream(wcfg StreamConfig, cfg L1Config) StreamMiner { return stream.NewL1(wcfg, cfg) }

// NewL2Stream builds the incremental L2 miner (boundary-spanning session
// tracking plus incremental bigram counts).
func NewL2Stream(wcfg StreamConfig, scfg SessionConfig, cfg L2Config) StreamMiner {
	return stream.NewL2(wcfg, scfg, cfg)
}

// NewL3Stream builds the incremental L3 miner around a batch L3 miner.
func NewL3Stream(wcfg StreamConfig, miner *L3Miner) StreamMiner { return stream.NewL3(wcfg, miner) }

// Graph is a directed dependency graph built from a mined model, offering
// the §1.1 applications: impact prediction, root-cause candidate sets,
// criticality ranking, topological layering and cycle detection.
type Graph = depgraph.Graph

// GraphFromDeps builds a dependency graph from an application→service
// model, resolving groups to their owning applications.
func GraphFromDeps(deps AppServiceSet, owners map[string]string) *Graph {
	return depgraph.FromDeps(deps, owners)
}

// GraphFromPairs builds an undirected dependency graph approximation from a
// pair model (L1/L2 do not discover direction).
func GraphFromPairs(pairs PairSet) *Graph { return depgraph.FromPairs(pairs) }

// MakePair returns the normalized unordered pair of two application names.
func MakePair(a, b string) Pair { return core.MakePair(a, b) }

// ReadLogs reads a wire-format log stream into a sorted store.
func ReadLogs(r io.Reader) (*Store, error) { return logmodel.ReadAll(r) }

// WriteLogs writes a store to w in wire format.
func WriteLogs(w io.Writer, s *Store) error { return logmodel.WriteAll(w, s) }

// ReadDirectory reads and validates a service-directory XML document.
func ReadDirectory(r io.Reader) (*Directory, error) { return directory.Read(r) }

// MineL1 runs approach L1 over the given time range of the store. sources
// nil means all sources in the store.
func MineL1(store *Store, r TimeRange, sources []string, cfg L1Config) *L1Result {
	return l1.Mine(store, r, sources, cfg)
}

// BuildSessions reconstructs the user sessions of a sorted store.
func BuildSessions(store *Store, cfg SessionConfig) ([]Session, SessionStats) {
	return sessions.Build(store, cfg)
}

// MineL2 runs approach L2 over a session corpus.
func MineL2(ss []Session, cfg L2Config) *L2Result { return l2.Mine(ss, cfg) }

// NewL3Miner builds a reusable L3 miner for a service directory.
func NewL3Miner(dir *Directory, cfg L3Config) *L3Miner { return l3.NewMiner(dir, cfg) }

// MineBaseline runs the Agrawal et al. delay-histogram baseline.
func MineBaseline(store *Store, r TimeRange, sources []string, cfg BaselineConfig) *BaselineResult {
	return baseline.Mine(store, r, sources, cfg)
}

// ComparePairs scores a mined pair set against a reference model over a
// universe of possible pairs.
func ComparePairs(predicted, truth PairSet, universe int) Confusion {
	return core.ComparePairs(predicted, truth, universe)
}

// CompareAppService scores mined dependencies against a reference model.
func CompareAppService(predicted, truth AppServiceSet, universe int) Confusion {
	return core.CompareAppService(predicted, truth, universe)
}
